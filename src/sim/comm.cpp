#include "sim/comm.hpp"

#include "sim/checker.hpp"
#include "sim/fault.hpp"
#include "sim/trace_sink.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

// Protocol-checker hooks. Compiled in when PCMD_CHECKER_ENABLED is 1 (the
// PCMD_CHECKER CMake option, defaulted in comm.hpp); then each hook is one
// branch on a pointer that is null unless a checker is attached. Compiled
// out entirely when 0.
#if PCMD_CHECKER_ENABLED
#define PCMD_CHECKER_HOOK(engine, call)              \
  do {                                               \
    if (auto* pcmd_checker_ = (engine)->checker_) {  \
      pcmd_checker_->call;                           \
    }                                                \
  } while (0)
#else
#define PCMD_CHECKER_HOOK(engine, call) \
  do {                                  \
  } while (0)
#endif

namespace pcmd::sim {

// ---------------------------------------------------------------- Comm ----

int Comm::size() const { return engine_->size(); }

void Comm::advance(double seconds) {
  if (seconds < 0.0) {
    throw std::invalid_argument("Comm::advance: negative time");
  }
  auto& state = *engine_->states_[rank_];
  const double start = state.clock;
  double elapsed = seconds;
  if (auto* faults = engine_->faults_) {
    // A stalled rank really is computing for longer, so the stretch lands in
    // the clock AND compute_seconds — that is what lets the DLB see it.
    const double extra = faults->stall_extra(rank_, start, seconds);
    if (extra > 0.0) {
      elapsed += extra;
      faults->count_stall(extra);
    }
  }
  state.clock += elapsed;
  state.counters.compute_seconds += elapsed;
  PCMD_CHECKER_HOOK(engine_, on_clock(rank_, state.clock));
  if (auto* sink = engine_->sink_) sink->on_compute(rank_, start, elapsed);
}

double Comm::clock() const { return engine_->states_[rank_]->clock; }

void Comm::send(int dst, int tag, Buffer payload) {
  (void)engine_->do_send(rank_, dst, tag, std::move(payload), 0, 0.0);
}

Comm::SendOutcome Comm::send_attempt(int dst, int tag, Buffer payload,
                                     std::uint32_t attempt,
                                     double extra_delay) {
  return engine_->do_send(rank_, dst, tag, std::move(payload), attempt,
                          extra_delay);
}

Buffer Comm::recv(int src, int tag) { return engine_->do_recv(rank_, src, tag); }

std::optional<Buffer> Comm::try_recv(int src, int tag) {
  return engine_->do_try_recv(rank_, src, tag);
}

std::optional<Buffer> Comm::recv_deadline(int src, int tag, double timeout) {
  return engine_->do_recv_deadline(rank_, src, tag, timeout);
}

bool Comm::has_message(int src, int tag) const {
  return engine_->states_[rank_]->mailbox.has(src, tag,
                                              engine_->current_phase());
}

std::vector<int> Comm::sources_with(int tag) const {
  return engine_->states_[rank_]->mailbox.sources_with(
      tag, engine_->current_phase());
}

void Comm::collective_begin(ReduceOp op, std::span<const double> values,
                            int slot) {
  engine_->do_collective_begin(rank_, op, values, slot);
}

std::vector<double> Comm::collective_end() {
  return engine_->do_collective_end(rank_);
}

void Comm::hb_access(HbObject object, bool is_write, const char* site) {
  engine_->do_hb_access(rank_, object, is_write, site);
}

const RankCounters& Comm::counters() const {
  return engine_->states_[rank_]->counters;
}

// -------------------------------------------------------------- Engine ----

Engine::Engine(int ranks, MachineModel model)
    : ranks_(ranks), model_(std::move(model)), hop_model_(std::max(ranks, 1)) {
  if (ranks < 1) {
    throw std::invalid_argument("Engine: need at least one rank");
  }
  states_.reserve(ranks_);
  for (int r = 0; r < ranks_; ++r) {
    states_.push_back(std::make_unique<RankState>());
  }
  alive_.assign(static_cast<std::size_t>(ranks_), 1);
  parked_.assign(static_cast<std::size_t>(ranks_), 0);
}

Engine::~Engine() = default;

double Engine::clock(int rank) const { return states_.at(rank)->clock; }

const RankCounters& Engine::counters(int rank) const {
  return states_.at(rank)->counters;
}

double Engine::makespan() const {
  double m = 0.0;
  for (const auto& s : states_) m = std::max(m, s->clock);
  return m;
}

void Engine::align_clocks() {
  const double m = makespan();
  for (auto& s : states_) s->clock = m;
#if PCMD_CHECKER_ENABLED
  if (checker_) {
    for (int r = 0; r < ranks_; ++r) checker_->on_clock(r, m);
  }
#endif
}

void Engine::restore_clocks(const std::vector<double>& clocks) {
  if (clocks.size() != static_cast<std::size_t>(ranks_)) {
    throw std::invalid_argument(
        "Engine::restore_clocks: got " + std::to_string(clocks.size()) +
        " clocks for " + std::to_string(ranks_) + " ranks");
  }
  for (int r = 0; r < ranks_; ++r) {
    states_[static_cast<std::size_t>(r)]->clock = clocks[static_cast<std::size_t>(r)];
  }
#if PCMD_CHECKER_ENABLED
  if (checker_) {
    for (int r = 0; r < ranks_; ++r) {
      checker_->on_clock(r, clocks[static_cast<std::size_t>(r)]);
    }
  }
#endif
}

void Engine::set_checker(ProtocolChecker* checker) {
  checker_ = checker;
#if PCMD_CHECKER_ENABLED
  if (checker_) checker_->on_attach(ranks_);
#endif
}

void Engine::set_trace_sink(TraceSink* sink) {
  sink_ = sink;
  if (sink_) sink_->on_attach(ranks_);
}

void Engine::set_fault_injector(FaultInjector* faults) { faults_ = faults; }

int Engine::alive_count() const {
  int n = 0;
  for (const char a : alive_) n += a != 0;
  return n;
}

void Engine::set_parked(int rank, bool parked) {
  auto& flag = parked_.at(static_cast<std::size_t>(rank));
  const char want = parked ? 1 : 0;
  if (flag == want) return;
  flag = want;
  if (parked) return;
  // Activation: the rank slept through an unknown number of collectives and
  // an unknown amount of virtual time. Fast-forward its cursors and clock to
  // the running ranks' position (equal across them between steps) so its
  // next collective_begin lands in the current slot, not a stale one.
  auto& state = *states_[static_cast<std::size_t>(rank)];
  std::size_t seq = state.end_seq;
  double clk = state.clock;
  for (int r = 0; r < ranks_; ++r) {
    if (r == rank || alive_[static_cast<std::size_t>(r)] == 0 ||
        parked_[static_cast<std::size_t>(r)] != 0) {
      continue;
    }
    seq = std::max(seq, states_[static_cast<std::size_t>(r)]->end_seq);
    clk = std::max(clk, states_[static_cast<std::size_t>(r)]->clock);
  }
  state.begin_seq = seq;
  state.end_seq = seq;
  state.clock = clk;
  PCMD_CHECKER_HOOK(this, on_clock(rank, state.clock));
}

void Engine::declare_dead(int rank) {
  alive_.at(static_cast<std::size_t>(rank)) = 0;
}

void Engine::notify_phase_begin() {
  PCMD_CHECKER_HOOK(this, on_phase_begin(phase_));
  if (faults_ != nullptr) {
    // Crashes land only here — between phases, on the driving thread — so
    // phase bodies see a consistent aliveness view and both engines agree
    // on exactly which phase a rank died before.
    for (int r = 0; r < ranks_; ++r) {
      if (alive_[static_cast<std::size_t>(r)] != 0 &&
          faults_->crashed(r, states_[static_cast<std::size_t>(r)]->clock)) {
        alive_[static_cast<std::size_t>(r)] = 0;
      }
    }
  }
}

Comm::SendOutcome Engine::do_send(int src, int dst, int tag, Buffer payload,
                                  std::uint32_t attempt, double extra_delay) {
  if (dst < 0 || dst >= ranks_) {
    throw std::out_of_range("Comm::send: destination rank out of range");
  }
  auto& sender = *states_[src];
  const auto bytes = static_cast<std::uint64_t>(payload.size());
  const int hops = hop_model_.hops(src, dst);

  FaultInjector::SendFault fault;
  if (faults_ != nullptr) {
    fault = faults_->send_fault(src, dst, tag, phase_, attempt);
  }

  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.tag = tag;
  msg.phase = phase_;
  msg.arrival = sender.clock + extra_delay + fault.extra_delay +
                model_.message_time(bytes, hops) * fault.link_factor;
  msg.payload = std::move(payload);

  Comm::SendOutcome outcome;
  outcome.arrival = msg.arrival;

  // The attempt is charged and traced whether or not the network then eats
  // it — the sender did the work either way.
  sender.counters.messages_sent += 1;
  sender.counters.bytes_sent += bytes;
  PCMD_CHECKER_HOOK(this, on_send(src, dst, tag, phase_,
                                  static_cast<std::size_t>(bytes)));
  if (auto* sink = sink_) {
    sink->on_send(src, dst, tag, static_cast<std::size_t>(bytes),
                  sender.clock);
  }

  if (fault.extra_delay > 0.0) faults_->count_delay();
  if (fault.drop) {
    faults_->count_drop();
    outcome.dropped = true;
    return outcome;
  }
  if (fault.corrupt && !msg.payload.empty()) {
    msg.payload[fault.corrupt_byte % msg.payload.size()] ^= fault.corrupt_mask;
    faults_->count_corrupt();
    outcome.corrupted = true;
  }
  states_[dst]->mailbox.push(std::move(msg));
  return outcome;
}

Buffer Engine::do_recv(int rank, int src, int tag) {
  auto msg = do_try_recv(rank, src, tag);
  if (!msg) {
    PCMD_CHECKER_HOOK(this, on_recv_missing(rank, src, tag, phase_));
    throw ProtocolError("Comm::recv: no message from rank " +
                        std::to_string(src) + " tag " + std::to_string(tag) +
                        " visible to rank " + std::to_string(rank) +
                        " in phase " + std::to_string(phase_) +
                        " (receives must follow the send's phase)");
  }
  return std::move(*msg);
}

std::optional<Buffer> Engine::do_try_recv(int rank, int src, int tag) {
  auto& state = *states_[rank];
  auto msg = state.mailbox.pop(src, tag, phase_);
  if (!msg) return std::nullopt;
  double wait = 0.0;
  if (msg->arrival > state.clock) {
    wait = msg->arrival - state.clock;
    state.counters.comm_wait_seconds += wait;
    state.clock = msg->arrival;
  }
  state.counters.messages_received += 1;
  state.counters.bytes_received += msg->payload.size();
  PCMD_CHECKER_HOOK(this, on_recv(rank, src, tag, phase_, msg->phase));
  PCMD_CHECKER_HOOK(this, on_clock(rank, state.clock));
  if (auto* sink = sink_) {
    sink->on_recv(rank, src, tag, msg->payload.size(), state.clock, wait);
  }
  return std::move(msg->payload);
}

std::optional<Buffer> Engine::do_recv_deadline(int rank, int src, int tag,
                                               double timeout) {
  if (timeout < 0.0) {
    throw std::invalid_argument("Comm::recv_deadline: negative timeout");
  }
  auto msg = do_try_recv(rank, src, tag);
  if (msg) return msg;
  // No message is visible, and under BSP visibility none can appear later:
  // model having waited out the full deadline.
  auto& state = *states_[rank];
  state.clock += timeout;
  state.counters.comm_wait_seconds += timeout;
  state.counters.recv_timeouts += 1;
  PCMD_CHECKER_HOOK(this, on_clock(rank, state.clock));
  return std::nullopt;
}

void Engine::do_hb_access(int rank, HbObject object, bool is_write,
                          const char* site) {
  PCMD_CHECKER_HOOK(this, on_access(rank, object, is_write, site, phase_));
}

void Engine::do_collective_begin(int rank, ReduceOp op,
                                 std::span<const double> values,
                                 int logical_slot) {
  const int logical = logical_slot < 0 ? rank : logical_slot;
  if (logical >= ranks_) {
    throw ProtocolError("collective_begin: logical slot " +
                        std::to_string(logical) + " out of range");
  }
  std::lock_guard lock(collective_mutex_);
  auto& state = *states_[rank];
  const std::size_t slot_index = state.begin_seq++;
  if (slot_index >= collectives_.size()) {
    collectives_.resize(slot_index + 1);
  }
  auto& slot = collectives_[slot_index];
  if (slot.contributions == 0) {
    slot.op = op;
    slot.width = values.size();
    slot.per_slot.assign(slot.width * ranks_, 0.0);
    slot.present_slot.assign(ranks_, false);
    slot.present_rank.assign(ranks_, false);
  } else if (slot.op != op || slot.width != values.size()) {
    throw ProtocolError("collective_begin: mismatched op/width across ranks");
  }
  if (slot.present_slot[static_cast<std::size_t>(logical)]) {
    throw ProtocolError("collective_begin: logical slot " +
                        std::to_string(logical) +
                        " contributed twice (two ranks claiming one role?)");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    slot.per_slot[slot.width * static_cast<std::size_t>(logical) + i] =
        values[i];
  }
  slot.present_slot[static_cast<std::size_t>(logical)] = true;
  slot.present_rank[static_cast<std::size_t>(rank)] = true;
  slot.max_clock = std::max(slot.max_clock, state.clock);
  slot.last_begin_phase = std::max(slot.last_begin_phase, phase_);
  slot.contributions += 1;
  PCMD_CHECKER_HOOK(this, on_collective_begin(rank, phase_,
                                              static_cast<int>(op),
                                              values.size()));
  if (auto* sink = sink_) {
    sink->on_collective_begin(rank, static_cast<int>(op), values.size(),
                              state.clock);
  }
}

std::vector<double> Engine::do_collective_end(int rank) {
  std::lock_guard lock(collective_mutex_);
  auto& state = *states_[rank];
  const std::size_t slot_index = state.end_seq;
  // Completeness is judged against the ranks still alive: a collective only
  // blocks on participants that can still show up. A rank that contributed
  // and then crashed is kept in the combine — its value is already in flight.
  bool complete = slot_index < collectives_.size() &&
                  collectives_[slot_index].last_begin_phase < phase_ &&
                  collectives_[slot_index].contributions > 0;
  if (complete) {
    // Parked ranks are exempt too: a spare idling at the barrier will never
    // contribute until membership wakes it.
    const auto& present = collectives_[slot_index].present_rank;
    for (int r = 0; r < ranks_; ++r) {
      if (alive_[static_cast<std::size_t>(r)] != 0 &&
          parked_[static_cast<std::size_t>(r)] == 0 &&
          !present[static_cast<std::size_t>(r)]) {
        complete = false;
        break;
      }
    }
  }
  if (!complete) {
    throw ProtocolError(
        "collective_end: not all (live) ranks have called collective_begin "
        "in an earlier phase (begin and end must be in different phases)");
  }
  state.end_seq++;
  auto& slot = collectives_[slot_index];
  if (!slot.have_combined) {
    // Combine in logical-slot order so rounding never depends on scheduling
    // or on role placement; skip slots that never contributed (crashed
    // before this collective).
    slot.combined.assign(slot.width, 0.0);
    for (std::size_t i = 0; i < slot.width; ++i) {
      double acc = 0.0;
      bool first = true;
      for (int r = 0; r < ranks_; ++r) {
        if (!slot.present_slot[static_cast<std::size_t>(r)]) continue;
        const double v = slot.per_slot[slot.width * r + i];
        if (first) {
          acc = v;
          first = false;
          continue;
        }
        switch (slot.op) {
          case ReduceOp::kSum:
            acc += v;
            break;
          case ReduceOp::kMax:
            acc = std::max(acc, v);
            break;
          case ReduceOp::kMin:
            acc = std::min(acc, v);
            break;
        }
      }
      slot.combined[i] = acc;
    }
    slot.per_slot.clear();
    slot.per_slot.shrink_to_fit();
    slot.have_combined = true;
  }
  const double cost =
      model_.collective_time(ranks_, slot.width * sizeof(double));
  const double finish = slot.max_clock + cost;
  double wait = 0.0;
  if (finish > state.clock) {
    wait = finish - state.clock;
    state.counters.collective_seconds += wait;
    state.clock = finish;
  }
  PCMD_CHECKER_HOOK(this, on_collective_end(rank, phase_));
  PCMD_CHECKER_HOOK(this, on_clock(rank, state.clock));
  if (auto* sink = sink_) sink->on_collective_end(rank, state.clock, wait);
  return slot.combined;
}

}  // namespace pcmd::sim
