#include "sim/membership.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace pcmd::sim {

Membership::Membership(int roles, int physical_ranks)
    : roles_(roles), physical_(physical_ranks) {
  if (roles < 1) {
    throw std::invalid_argument("Membership: need at least one role");
  }
  if (physical_ranks < roles) {
    throw std::invalid_argument(
        "Membership: fewer physical ranks (" + std::to_string(physical_ranks) +
        ") than roles (" + std::to_string(roles) + ")");
  }
  physical_of_.resize(static_cast<std::size_t>(roles_));
  role_of_.assign(static_cast<std::size_t>(physical_), -1);
  for (int l = 0; l < roles_; ++l) {
    physical_of_[static_cast<std::size_t>(l)] = l;
    role_of_[static_cast<std::size_t>(l)] = l;
  }
  for (int p = roles_; p < physical_; ++p) spare_pool_.push_back(p);
}

int Membership::physical_of(int role) const {
  return physical_of_.at(static_cast<std::size_t>(role));
}

int Membership::role_of(int physical) const {
  return role_of_.at(static_cast<std::size_t>(physical));
}

int Membership::alive_roles() const {
  int n = 0;
  for (const int p : physical_of_) n += p >= 0;
  return n;
}

bool Membership::is_spare(int physical) const {
  return std::find(spare_pool_.begin(), spare_pool_.end(), physical) !=
         spare_pool_.end();
}

int Membership::spares_available() const {
  return static_cast<int>(spare_pool_.size());
}

int Membership::fail_over(int role) {
  const std::size_t l = static_cast<std::size_t>(role);
  const int old = physical_of_.at(l);
  if (old >= 0) role_of_[static_cast<std::size_t>(old)] = -1;
  ++epoch_;
  if (spare_pool_.empty()) {
    physical_of_[l] = -1;  // retired: survivors adopt its cells
    return -1;
  }
  const int promoted = spare_pool_.front();
  spare_pool_.erase(spare_pool_.begin());
  physical_of_[l] = promoted;
  role_of_[static_cast<std::size_t>(promoted)] = role;
  return promoted;
}

void Membership::spare_died(int physical) {
  spare_pool_.erase(
      std::remove(spare_pool_.begin(), spare_pool_.end(), physical),
      spare_pool_.end());
}

}  // namespace pcmd::sim
