#include "sim/checker.hpp"

#include "sim/comm.hpp"

#include <algorithm>
#include <sstream>

namespace pcmd::sim {

const char* to_string(ProtocolViolation::Kind kind) {
  switch (kind) {
    case ProtocolViolation::Kind::kUnconsumedSend:
      return "unconsumed-send";
    case ProtocolViolation::Kind::kMissingSender:
      return "missing-sender";
    case ProtocolViolation::Kind::kCollectiveArity:
      return "collective-arity";
    case ProtocolViolation::Kind::kCollectiveMismatch:
      return "collective-mismatch";
    case ProtocolViolation::Kind::kClockRegression:
      return "clock-regression";
    case ProtocolViolation::Kind::kNonNeighborMessage:
      return "non-neighbor-message";
    case ProtocolViolation::Kind::kUnorderedAccess:
      return "unordered-access";
  }
  return "unknown";
}

std::size_t ProtocolReport::count(ProtocolViolation::Kind kind) const {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(),
                    [kind](const ProtocolViolation& v) {
                      return v.kind == kind;
                    }));
}

std::string ProtocolReport::to_string() const {
  std::ostringstream os;
  os << "protocol checker: " << violations.size() << " violation(s)";
  for (const auto& v : violations) {
    os << "\n  [" << sim::to_string(v.kind) << "] rank=" << v.rank
       << " phase=" << v.phase << ": " << v.detail;
  }
  return os.str();
}

ProtocolChecker::ProtocolChecker(Options options)
    : options_(std::move(options)) {}

void ProtocolChecker::record(ProtocolViolation::Kind kind, int rank, int phase,
                             std::string detail) {
  violations_.push_back({kind, rank, phase, std::move(detail)});
}

// ---- vector-clock plumbing ----------------------------------------------
//
// Every ordering event (send, recv, collective begin/end, stamped access)
// ticks the acting rank's own component, so two events on one rank always
// have distinct epochs and "after the send" is distinguishable from "before
// the send". Messages carry the sender's clock; recv joins it. Collectives
// accumulate the join of every begin and hand it to every end — under BSP
// all begins precede all ends, so the end-side join is the all-participant
// barrier edge.

ProtocolChecker::VectorClock& ProtocolChecker::tick(int rank) {
  const auto r = static_cast<std::size_t>(rank);
  if (vc_.size() <= r) vc_.resize(r + 1);
  auto& vc = vc_[r];
  if (vc.size() <= r) vc.resize(r + 1, 0);
  ++vc[r];
  return vc;
}

void ProtocolChecker::join(VectorClock& into, const VectorClock& other) {
  if (into.size() < other.size()) into.resize(other.size(), 0);
  for (std::size_t i = 0; i < other.size(); ++i) {
    into[i] = std::max(into[i], other[i]);
  }
}

std::uint64_t ProtocolChecker::component(const VectorClock& vc, int rank) {
  const auto r = static_cast<std::size_t>(rank);
  return r < vc.size() ? vc[r] : 0;
}

void ProtocolChecker::flush_accesses_locked() const {
  if (staged_.empty()) return;
  // Canonical judging order: by phase, then rank, then per-rank program
  // order. This is independent of thread interleaving within a phase, so
  // SeqEngine and ThreadEngine produce identical reports.
  std::sort(staged_.begin(), staged_.end(),
            [](const StagedAccess& a, const StagedAccess& b) {
              if (a.phase != b.phase) return a.phase < b.phase;
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.seq < b.seq;
            });
  for (const auto& access : staged_) {
    auto& history = objects_[access.object];
    const auto flag_pair = [&](const LastAccess& prior, int prior_rank,
                               bool prior_write) {
      if (component(access.vc, prior_rank) >= prior.epoch) return;  // ordered
      std::string key = access.object;
      key += '|';
      key += std::to_string(prior_rank);
      key += prior_write ? 'w' : 'r';
      key += prior.site;
      key += '|';
      key += std::to_string(access.rank);
      key += access.write ? 'w' : 'r';
      key += access.site;
      if (!reported_pairs_.insert(std::move(key)).second) return;
      std::ostringstream os;
      os << "rank " << access.rank << ' ' << (access.write ? "write" : "read")
         << " of shared object '" << access.object << "' in phase "
         << access.phase << " (span '" << access.site
         << "') is unordered with rank " << prior_rank << "'s "
         << (prior_write ? "write" : "read") << " in phase " << prior.phase
         << " (span '" << prior.site
         << "') — no message or collective path connects them, so the "
            "outcome depends on the schedule";
      hb_violations_.push_back({ProtocolViolation::Kind::kUnorderedAccess,
                                access.rank, access.phase, os.str()});
    };
    // A prior write conflicts with anything; a prior read only with a write.
    for (const auto& [rank, last] : history.writes) {
      if (rank != access.rank) flag_pair(last, rank, /*prior_write=*/true);
    }
    if (access.write) {
      for (const auto& [rank, last] : history.reads) {
        if (rank != access.rank) flag_pair(last, rank, /*prior_write=*/false);
      }
    }
    auto& slot =
        access.write ? history.writes[access.rank] : history.reads[access.rank];
    slot = {access.epoch, access.phase, access.site};
  }
  staged_.clear();
}

void ProtocolChecker::on_attach(int ranks) {
  std::lock_guard lock(mutex_);
  attached_ranks_ = ranks;
}

void ProtocolChecker::on_phase_begin(int phase) {
  std::lock_guard lock(mutex_);
  ++events_;
  current_phase_ = phase;
  // Both engines call this on the driving thread with the previous phase
  // fully drained — a deterministic point to judge its staged accesses.
  flush_accesses_locked();
}

void ProtocolChecker::on_send(int src, int dst, int tag, int phase,
                              std::size_t bytes) {
  std::lock_guard lock(mutex_);
  ++events_;
  max_rank_seen_ = std::max({max_rank_seen_, src, dst});
  if (options_.neighbor_torus && src != dst &&
      !options_.exempt_tags.count(tag) &&
      !options_.neighbor_torus->adjacent8(src, dst)) {
    std::ostringstream os;
    os << "rank " << src << " sent tag " << tag << " (" << bytes
       << " bytes) to rank " << dst
       << ", which is not an 8-neighbour on the "
       << options_.neighbor_torus->rows() << "x"
       << options_.neighbor_torus->cols()
       << " torus — regular-communication guarantee violated";
    record(ProtocolViolation::Kind::kNonNeighborMessage, src, phase, os.str());
  }
  // Tick before snapshotting so accesses stamped after this send get a later
  // epoch than the message carries — the receiver is ordered only against
  // what the sender had done by the send.
  pending_.push_back({src, dst, tag, phase, bytes, tick(src)});
}

void ProtocolChecker::on_recv(int dst, int src, int tag, int recv_phase,
                              int sent_phase) {
  std::lock_guard lock(mutex_);
  ++events_;
  max_rank_seen_ = std::max({max_rank_seen_, src, dst});
  const auto it = std::find_if(
      pending_.begin(), pending_.end(), [&](const PendingSend& s) {
        return s.src == src && s.dst == dst && s.tag == tag &&
               s.phase == sent_phase;
      });
  if (it == pending_.end()) {
    std::ostringstream os;
    os << "rank " << dst << " received tag " << tag << " from rank " << src
       << " in phase " << recv_phase
       << " but the checker never saw the matching send (sent phase "
       << sent_phase << ") — was the checker attached after traffic started?";
    record(ProtocolViolation::Kind::kMissingSender, dst, recv_phase,
           os.str());
    tick(dst);
    return;
  }
  auto& vc = tick(dst);
  join(vc, it->vc);
  pending_.erase(it);
}

void ProtocolChecker::on_recv_missing(int dst, int src, int tag, int phase) {
  std::lock_guard lock(mutex_);
  ++events_;
  max_rank_seen_ = std::max({max_rank_seen_, src, dst});
  tick(dst);
  std::ostringstream os;
  os << "rank " << dst << " posted recv(src=" << src << ", tag=" << tag
     << ") in phase " << phase
     << " with no matching send from an earlier phase — a real message"
        "-passing run would deadlock here";
  record(ProtocolViolation::Kind::kMissingSender, dst, phase, os.str());
}

void ProtocolChecker::on_clock(int rank, double clock) {
  std::lock_guard lock(mutex_);
  ++events_;
  max_rank_seen_ = std::max(max_rank_seen_, rank);
  if (rank >= 0) {
    if (last_clock_.size() <= static_cast<std::size_t>(rank)) {
      last_clock_.resize(rank + 1, 0.0);
    }
    if (clock < last_clock_[rank]) {
      std::ostringstream os;
      os << "rank " << rank << " clock moved backwards from "
         << last_clock_[rank] << " to " << clock;
      record(ProtocolViolation::Kind::kClockRegression, rank, current_phase_,
             os.str());
    }
    last_clock_[rank] = clock;
  }
}

void ProtocolChecker::on_collective_begin(int rank, int phase, int op,
                                          std::size_t width) {
  std::lock_guard lock(mutex_);
  ++events_;
  max_rank_seen_ = std::max(max_rank_seen_, rank);
  if (begin_seq_.size() <= static_cast<std::size_t>(rank)) {
    begin_seq_.resize(rank + 1, 0);
  }
  const std::size_t slot = begin_seq_[rank]++;
  if (collectives_.size() <= slot) {
    collectives_.resize(slot + 1);
  }
  auto& trace = collectives_[slot];
  if (trace.begins == 0) {
    trace.op = op;
    trace.width = width;
  } else if (trace.op != op || trace.width != width) {
    std::ostringstream os;
    os << "rank " << rank << " began collective #" << slot << " with op "
       << op << " width " << width << " but earlier ranks used op "
       << trace.op << " width " << trace.width;
    record(ProtocolViolation::Kind::kCollectiveMismatch, rank, phase,
           os.str());
  }
  trace.begin_ranks.push_back(rank);
  ++trace.begins;
  join(trace.vc, tick(rank));
}

void ProtocolChecker::on_collective_end(int rank, int phase) {
  std::lock_guard lock(mutex_);
  ++events_;
  max_rank_seen_ = std::max(max_rank_seen_, rank);
  if (end_seq_.size() <= static_cast<std::size_t>(rank)) {
    end_seq_.resize(rank + 1, 0);
  }
  const std::size_t slot = end_seq_[rank]++;
  if (slot >= collectives_.size()) {
    std::ostringstream os;
    os << "rank " << rank << " completed collective #" << slot
       << " that no rank ever began";
    record(ProtocolViolation::Kind::kCollectiveArity, rank, phase, os.str());
    tick(rank);
    return;
  }
  ++collectives_[slot].ends;
  // BSP puts every begin in an earlier phase than any end, so the trace's
  // joined clock already covers all participants: the all-to-all edge.
  auto& vc = tick(rank);
  join(vc, collectives_[slot].vc);
}

void ProtocolChecker::on_access(int rank, HbObject object, bool is_write,
                                const char* site, int phase) {
  std::lock_guard lock(mutex_);
  ++events_;
  max_rank_seen_ = std::max(max_rank_seen_, rank);
  if (access_seq_.size() <= static_cast<std::size_t>(rank)) {
    access_seq_.resize(rank + 1, 0);
  }
  StagedAccess access;
  access.rank = rank;
  access.phase = phase;
  access.seq = access_seq_[rank]++;
  access.object = object.kind;
  access.object += '/';
  access.object += std::to_string(object.index);
  access.write = is_write;
  access.site = site;
  access.vc = tick(rank);  // copy the post-tick snapshot
  access.epoch = component(access.vc, rank);
  staged_.push_back(std::move(access));
}

ProtocolReport ProtocolChecker::report() const {
  std::lock_guard lock(mutex_);
  flush_accesses_locked();
  ProtocolReport report;
  report.violations = violations_;
  report.violations.insert(report.violations.end(), hb_violations_.begin(),
                           hb_violations_.end());

  const int ranks = attached_ranks_ > 0 ? attached_ranks_ : max_rank_seen_ + 1;
  for (const auto& send : pending_) {
    std::ostringstream os;
    os << "message from rank " << send.src << " to rank " << send.dst
       << " tag " << send.tag << " (" << send.bytes << " bytes), sent in phase "
       << send.phase << ", was never received";
    report.violations.push_back({ProtocolViolation::Kind::kUnconsumedSend,
                                 send.src, send.phase, os.str()});
  }
  for (std::size_t slot = 0; slot < collectives_.size(); ++slot) {
    const auto& trace = collectives_[slot];
    if (trace.begins != ranks || trace.ends != ranks) {
      std::ostringstream os;
      os << "collective #" << slot << " (width " << trace.width
         << ") begun by " << trace.begins << " and completed by "
         << trace.ends << " of " << ranks
         << " ranks — barrier arity mismatch";
      const int rank = trace.begin_ranks.empty() ? -1 : trace.begin_ranks[0];
      report.violations.push_back({ProtocolViolation::Kind::kCollectiveArity,
                                   rank, current_phase_, os.str()});
    }
  }
  return report;
}

void ProtocolChecker::require_clean() const {
  const ProtocolReport r = report();
  if (!r.ok()) {
    throw ProtocolError(r.to_string());
  }
}

void ProtocolChecker::reset() {
  std::lock_guard lock(mutex_);
  current_phase_ = 0;
  max_rank_seen_ = -1;
  // attached_ranks_ survives reset: the engine is still the same.
  events_ = 0;
  pending_.clear();
  last_clock_.clear();
  begin_seq_.clear();
  end_seq_.clear();
  collectives_.clear();
  violations_.clear();
  vc_.clear();
  access_seq_.clear();
  staged_.clear();
  objects_.clear();
  reported_pairs_.clear();
  hb_violations_.clear();
}

std::uint64_t ProtocolChecker::events_recorded() const {
  std::lock_guard lock(mutex_);
  return events_;
}

}  // namespace pcmd::sim
