#include "sim/checker.hpp"

#include "sim/comm.hpp"

#include <algorithm>
#include <sstream>

namespace pcmd::sim {

const char* to_string(ProtocolViolation::Kind kind) {
  switch (kind) {
    case ProtocolViolation::Kind::kUnconsumedSend:
      return "unconsumed-send";
    case ProtocolViolation::Kind::kMissingSender:
      return "missing-sender";
    case ProtocolViolation::Kind::kCollectiveArity:
      return "collective-arity";
    case ProtocolViolation::Kind::kCollectiveMismatch:
      return "collective-mismatch";
    case ProtocolViolation::Kind::kClockRegression:
      return "clock-regression";
    case ProtocolViolation::Kind::kNonNeighborMessage:
      return "non-neighbor-message";
  }
  return "unknown";
}

std::size_t ProtocolReport::count(ProtocolViolation::Kind kind) const {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(),
                    [kind](const ProtocolViolation& v) {
                      return v.kind == kind;
                    }));
}

std::string ProtocolReport::to_string() const {
  std::ostringstream os;
  os << "protocol checker: " << violations.size() << " violation(s)";
  for (const auto& v : violations) {
    os << "\n  [" << sim::to_string(v.kind) << "] rank=" << v.rank
       << " phase=" << v.phase << ": " << v.detail;
  }
  return os.str();
}

ProtocolChecker::ProtocolChecker(Options options)
    : options_(std::move(options)) {}

void ProtocolChecker::record(ProtocolViolation::Kind kind, int rank, int phase,
                             std::string detail) {
  violations_.push_back({kind, rank, phase, std::move(detail)});
}

void ProtocolChecker::on_attach(int ranks) {
  std::lock_guard lock(mutex_);
  attached_ranks_ = ranks;
}

void ProtocolChecker::on_phase_begin(int phase) {
  std::lock_guard lock(mutex_);
  ++events_;
  current_phase_ = phase;
}

void ProtocolChecker::on_send(int src, int dst, int tag, int phase,
                              std::size_t bytes) {
  std::lock_guard lock(mutex_);
  ++events_;
  max_rank_seen_ = std::max({max_rank_seen_, src, dst});
  if (options_.neighbor_torus && src != dst &&
      !options_.exempt_tags.count(tag) &&
      !options_.neighbor_torus->adjacent8(src, dst)) {
    std::ostringstream os;
    os << "rank " << src << " sent tag " << tag << " (" << bytes
       << " bytes) to rank " << dst
       << ", which is not an 8-neighbour on the "
       << options_.neighbor_torus->rows() << "x"
       << options_.neighbor_torus->cols()
       << " torus — regular-communication guarantee violated";
    record(ProtocolViolation::Kind::kNonNeighborMessage, src, phase, os.str());
  }
  pending_.push_back({src, dst, tag, phase, bytes});
}

void ProtocolChecker::on_recv(int dst, int src, int tag, int recv_phase,
                              int sent_phase) {
  std::lock_guard lock(mutex_);
  ++events_;
  max_rank_seen_ = std::max({max_rank_seen_, src, dst});
  const auto it = std::find_if(
      pending_.begin(), pending_.end(), [&](const PendingSend& s) {
        return s.src == src && s.dst == dst && s.tag == tag &&
               s.phase == sent_phase;
      });
  if (it == pending_.end()) {
    std::ostringstream os;
    os << "rank " << dst << " received tag " << tag << " from rank " << src
       << " in phase " << recv_phase
       << " but the checker never saw the matching send (sent phase "
       << sent_phase << ") — was the checker attached after traffic started?";
    record(ProtocolViolation::Kind::kMissingSender, dst, recv_phase,
           os.str());
    return;
  }
  pending_.erase(it);
}

void ProtocolChecker::on_recv_missing(int dst, int src, int tag, int phase) {
  std::lock_guard lock(mutex_);
  ++events_;
  max_rank_seen_ = std::max({max_rank_seen_, src, dst});
  std::ostringstream os;
  os << "rank " << dst << " posted recv(src=" << src << ", tag=" << tag
     << ") in phase " << phase
     << " with no matching send from an earlier phase — a real message"
        "-passing run would deadlock here";
  record(ProtocolViolation::Kind::kMissingSender, dst, phase, os.str());
}

void ProtocolChecker::on_clock(int rank, double clock) {
  std::lock_guard lock(mutex_);
  ++events_;
  max_rank_seen_ = std::max(max_rank_seen_, rank);
  if (rank >= 0) {
    if (last_clock_.size() <= static_cast<std::size_t>(rank)) {
      last_clock_.resize(rank + 1, 0.0);
    }
    if (clock < last_clock_[rank]) {
      std::ostringstream os;
      os << "rank " << rank << " clock moved backwards from "
         << last_clock_[rank] << " to " << clock;
      record(ProtocolViolation::Kind::kClockRegression, rank, current_phase_,
             os.str());
    }
    last_clock_[rank] = clock;
  }
}

void ProtocolChecker::on_collective_begin(int rank, int phase, int op,
                                          std::size_t width) {
  std::lock_guard lock(mutex_);
  ++events_;
  max_rank_seen_ = std::max(max_rank_seen_, rank);
  if (begin_seq_.size() <= static_cast<std::size_t>(rank)) {
    begin_seq_.resize(rank + 1, 0);
  }
  const std::size_t slot = begin_seq_[rank]++;
  if (collectives_.size() <= slot) {
    collectives_.resize(slot + 1);
  }
  auto& trace = collectives_[slot];
  if (trace.begins == 0) {
    trace.op = op;
    trace.width = width;
  } else if (trace.op != op || trace.width != width) {
    std::ostringstream os;
    os << "rank " << rank << " began collective #" << slot << " with op "
       << op << " width " << width << " but earlier ranks used op "
       << trace.op << " width " << trace.width;
    record(ProtocolViolation::Kind::kCollectiveMismatch, rank, phase,
           os.str());
  }
  trace.begin_ranks.push_back(rank);
  ++trace.begins;
}

void ProtocolChecker::on_collective_end(int rank, int phase) {
  std::lock_guard lock(mutex_);
  ++events_;
  max_rank_seen_ = std::max(max_rank_seen_, rank);
  if (end_seq_.size() <= static_cast<std::size_t>(rank)) {
    end_seq_.resize(rank + 1, 0);
  }
  const std::size_t slot = end_seq_[rank]++;
  if (slot >= collectives_.size()) {
    std::ostringstream os;
    os << "rank " << rank << " completed collective #" << slot
       << " that no rank ever began";
    record(ProtocolViolation::Kind::kCollectiveArity, rank, phase, os.str());
    return;
  }
  ++collectives_[slot].ends;
}

ProtocolReport ProtocolChecker::report() const {
  std::lock_guard lock(mutex_);
  ProtocolReport report;
  report.violations = violations_;

  const int ranks = attached_ranks_ > 0 ? attached_ranks_ : max_rank_seen_ + 1;
  for (const auto& send : pending_) {
    std::ostringstream os;
    os << "message from rank " << send.src << " to rank " << send.dst
       << " tag " << send.tag << " (" << send.bytes << " bytes), sent in phase "
       << send.phase << ", was never received";
    report.violations.push_back({ProtocolViolation::Kind::kUnconsumedSend,
                                 send.src, send.phase, os.str()});
  }
  for (std::size_t slot = 0; slot < collectives_.size(); ++slot) {
    const auto& trace = collectives_[slot];
    if (trace.begins != ranks || trace.ends != ranks) {
      std::ostringstream os;
      os << "collective #" << slot << " (width " << trace.width
         << ") begun by " << trace.begins << " and completed by "
         << trace.ends << " of " << ranks
         << " ranks — barrier arity mismatch";
      const int rank = trace.begin_ranks.empty() ? -1 : trace.begin_ranks[0];
      report.violations.push_back({ProtocolViolation::Kind::kCollectiveArity,
                                   rank, current_phase_, os.str()});
    }
  }
  return report;
}

void ProtocolChecker::require_clean() const {
  const ProtocolReport r = report();
  if (!r.ok()) {
    throw ProtocolError(r.to_string());
  }
}

void ProtocolChecker::reset() {
  std::lock_guard lock(mutex_);
  current_phase_ = 0;
  max_rank_seen_ = -1;
  // attached_ranks_ survives reset: the engine is still the same.
  events_ = 0;
  pending_.clear();
  last_clock_.clear();
  begin_seq_.clear();
  end_seq_.clear();
  collectives_.clear();
  violations_.clear();
}

std::uint64_t ProtocolChecker::events_recorded() const {
  std::lock_guard lock(mutex_);
  return events_;
}

}  // namespace pcmd::sim
