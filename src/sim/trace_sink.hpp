// Observer interface for the virtual machine's communication and clock
// events — the engine-side half of the observability layer (pcmd::obs).
//
// A TraceSink attached via Engine::set_trace_sink receives one callback per
// modelled event: compute charged by advance(), point-to-point send/recv,
// and split-phase collectives. All timestamps are *virtual* seconds on the
// acting rank's clock. Callbacks for rank r are invoked on the execution
// context that runs rank r (the driving thread in SeqEngine, rank r's worker
// in ThreadEngine), so a sink keeping per-rank state needs no locking for
// it. Detached cost is one predicted-not-taken branch per event.
//
// The concrete production sink is obs::TraceCollector (src/obs); the
// interface lives here so pcmd_sim does not depend on pcmd_obs.
#pragma once

#include <cstddef>

namespace pcmd::sim {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // Fired by Engine::set_trace_sink with the engine's rank count, before any
  // event; a sink sizes its per-rank storage here.
  virtual void on_attach(int ranks) = 0;

  // Compute time charged via Comm::advance: [start, start + seconds].
  virtual void on_compute(int rank, double start, double seconds) = 0;

  // Send posted by `rank` to `peer` at virtual time `clock`.
  virtual void on_send(int rank, int peer, int tag, std::size_t bytes,
                       double clock) = 0;

  // Receive completed on `rank` from `peer`; `clock` is the post-receive
  // time, `wait` how far the clock jumped forward to the arrival.
  virtual void on_recv(int rank, int peer, int tag, std::size_t bytes,
                       double clock, double wait) = 0;

  // Split-phase collective participation on `rank`. `op` is the ReduceOp as
  // an int (the sink needs no semantics); `wait` on end is the synchronise-
  // to-slowest-plus-tree-cost clock jump.
  virtual void on_collective_begin(int rank, int op, std::size_t width,
                                   double clock) = 0;
  virtual void on_collective_end(int rank, double clock, double wait) = 0;
};

}  // namespace pcmd::sim
