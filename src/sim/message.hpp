// Typed message payloads. MPI-style: the sender packs trivially copyable
// values into a byte buffer; the receiver unpacks them in the same order.
// Pack/unpack is bounds-checked so protocol mismatches fail loudly instead
// of reading garbage.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace pcmd::sim {

using Buffer = std::vector<std::uint8_t>;

class Packer {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Packer::put requires a trivially copyable type");
    const auto offset = buffer_.size();
    buffer_.resize(offset + sizeof(T));
    std::memcpy(buffer_.data() + offset, &value, sizeof(T));
  }

  template <typename T>
  void put_vector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Packer::put_vector requires a trivially copyable type");
    put<std::uint64_t>(values.size());
    const auto offset = buffer_.size();
    buffer_.resize(offset + values.size() * sizeof(T));
    if (!values.empty()) {
      std::memcpy(buffer_.data() + offset, values.data(),
                  values.size() * sizeof(T));
    }
  }

  // Pre-sizes the underlying buffer. Hot per-step packers (halo, digest,
  // particle migration) know their exact payload size up front; reserving
  // once replaces the geometric-growth reallocations of repeated put().
  void reserve(std::size_t bytes) { buffer_.reserve(bytes); }

  Buffer take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  Buffer buffer_;
};

class Unpacker {
 public:
  // Owns the buffer: accepting by value lets callers hand over the result of
  // Comm::recv directly without lifetime pitfalls.
  explicit Unpacker(Buffer buffer) : buffer_(std::move(buffer)) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Unpacker::get requires a trivially copyable type");
    require(sizeof(T));
    T value;
    std::memcpy(&value, buffer_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> get_vector() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Unpacker::get_vector requires a trivially copyable type");
    const auto count = get<std::uint64_t>();
    // Check the element count against the remaining bytes *before* the
    // multiply: a corrupted count near 2^64 would overflow count * sizeof(T)
    // and sail past require() into a huge allocation.
    if (count > remaining() / sizeof(T)) {
      throw std::out_of_range("Unpacker: vector count " +
                              std::to_string(count) + " exceeds the " +
                              std::to_string(remaining()) + " bytes left");
    }
    require(count * sizeof(T));
    std::vector<T> values(count);
    if (count > 0) {
      std::memcpy(values.data(), buffer_.data() + cursor_, count * sizeof(T));
    }
    cursor_ += count * sizeof(T);
    return values;
  }

  bool exhausted() const { return cursor_ == buffer_.size(); }
  std::size_t remaining() const { return buffer_.size() - cursor_; }

 private:
  void require(std::size_t bytes) const {
    if (cursor_ + bytes > buffer_.size()) {
      throw std::out_of_range("Unpacker: buffer underflow (need " +
                              std::to_string(bytes) + " bytes, have " +
                              std::to_string(buffer_.size() - cursor_) + ")");
    }
  }

  Buffer buffer_;
  std::size_t cursor_ = 0;
};

// An in-flight message. `arrival` is the virtual time at which the payload is
// available at the destination; `phase` is the BSP phase it was sent in.
struct Message {
  int src = -1;
  int dst = -1;
  int tag = 0;
  int phase = -1;
  double arrival = 0.0;
  Buffer payload;
};

}  // namespace pcmd::sim
