// Per-rank message store. Thread-safe because the thread engine pushes from
// many ranks concurrently; in the sequential engine the mutex is uncontended.
#pragma once

#include "sim/message.hpp"

#include <mutex>
#include <optional>
#include <vector>

namespace pcmd::sim {

class Mailbox {
 public:
  void push(Message msg);

  // Removes and returns the oldest message from `src` with `tag` whose phase
  // is < `before_phase` (the BSP visibility rule). Empty when none matches.
  std::optional<Message> pop(int src, int tag, int before_phase);

  // True if a matching message is available.
  bool has(int src, int tag, int before_phase) const;

  // Source ranks with at least one visible message of `tag`, sorted
  // ascending and deduplicated — gives deterministic iteration order.
  std::vector<int> sources_with(int tag, int before_phase) const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Message> messages_;
};

}  // namespace pcmd::sim
