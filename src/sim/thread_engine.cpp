#include "sim/comm.hpp"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace pcmd::sim {

// Persistent worker pool: one thread per rank, woken per phase. A generation
// counter implements the phase barrier; the first stored exception is
// rethrown on the driving thread.
struct ThreadEngine::Pool {
  explicit Pool(ThreadEngine* engine) : engine(engine) {
    const int n = engine->size();
    workers.reserve(n);
    for (int r = 0; r < n; ++r) {
      workers.emplace_back([this, r] { worker_loop(r); });
    }
  }

  ~Pool() {
    {
      std::lock_guard lock(mutex);
      shutdown = true;
    }
    cv.notify_all();
    for (auto& t : workers) t.join();
  }

  void run(const std::function<void(Comm&)>& phase_body) {
    {
      std::lock_guard lock(mutex);
      body = &phase_body;
      pending = static_cast<int>(workers.size());
      ++generation;
    }
    cv.notify_all();
    {
      std::unique_lock lock(mutex);
      done_cv.wait(lock, [this] { return pending == 0; });
      body = nullptr;
      if (error) {
        auto e = error;
        error = nullptr;
        std::rethrow_exception(e);
      }
    }
  }

  void worker_loop(int rank) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(Comm&)>* my_body = nullptr;
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
        my_body = body;
      }
      try {
        // Aliveness only changes between phases, so this read is stable for
        // the whole dispatch. Crashed ranks never run again.
        if (engine->alive(rank)) {
          Comm comm(engine, rank);
          (*my_body)(comm);
        }
      } catch (...) {
        std::lock_guard lock(mutex);
        if (!error) error = std::current_exception();
      }
      {
        std::lock_guard lock(mutex);
        if (--pending == 0) done_cv.notify_all();
      }
    }
  }

  ThreadEngine* engine;
  std::vector<std::thread> workers;
  std::mutex mutex;
  std::condition_variable cv;
  std::condition_variable done_cv;
  const std::function<void(Comm&)>* body = nullptr;
  std::uint64_t generation = 0;
  int pending = 0;
  bool shutdown = false;
  std::exception_ptr error;
};

ThreadEngine::ThreadEngine(int ranks, MachineModel model)
    : Engine(ranks, std::move(model)), pool_(std::make_unique<Pool>(this)) {}

ThreadEngine::~ThreadEngine() = default;

void ThreadEngine::run_phase(const std::function<void(Comm&)>& body) {
  ++phase_;
  notify_phase_begin();
  pool_->run(body);
}

}  // namespace pcmd::sim
