#include "sim/comm.hpp"

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace pcmd::sim {

// Persistent worker pool: one thread per rank, woken per phase. A generation
// counter implements the phase barrier; the first stored exception is
// rethrown on the driving thread.
//
// The barrier is futex-backed (C++20 atomic wait/notify) rather than a
// mutex + condition variable: a step is 6+ phases and every phase is two
// full barrier crossings, so with many workers the old shared mutex was
// acquired 4x per worker per phase and serialized wake-up into a convoy.
// Now the dispatch path touches no lock at all — workers sleep on the
// `generation` word, the driver sleeps on the `pending` count, and the only
// mutex left guards the cold exception slot.
//
// Ordering: `body` is published by the release bump of `generation` and read
// under its acquire load; each worker's phase effects are published by its
// release fetch_sub of `pending`, and the driver's acquire load of 0
// synchronizes with every decrement in the release sequence, so the driving
// thread observes all rank state before run() returns.
struct ThreadEngine::Pool {
  explicit Pool(ThreadEngine* engine) : engine(engine) {
    const int n = engine->size();
    workers.reserve(n);
    for (int r = 0; r < n; ++r) {
      workers.emplace_back([this, r] { worker_loop(r); });
    }
  }

  ~Pool() {
    shutdown.store(true, std::memory_order_relaxed);
    generation.fetch_add(1, std::memory_order_release);
    generation.notify_all();
    for (auto& t : workers) t.join();
  }

  void run(const std::function<void(Comm&)>& phase_body) {
    body = &phase_body;
    pending.store(static_cast<int>(workers.size()),
                  std::memory_order_relaxed);
    generation.fetch_add(1, std::memory_order_release);
    generation.notify_all();
    for (;;) {
      const int left = pending.load(std::memory_order_acquire);
      if (left == 0) break;
      pending.wait(left, std::memory_order_acquire);
    }
    body = nullptr;
    if (error) {
      std::lock_guard lock(error_mutex);
      auto e = error;
      error = nullptr;
      std::rethrow_exception(e);
    }
  }

  void worker_loop(int rank) {
    std::uint64_t seen = 0;
    for (;;) {
      generation.wait(seen, std::memory_order_acquire);
      if (shutdown.load(std::memory_order_relaxed)) return;
      seen = generation.load(std::memory_order_acquire);
      try {
        // Aliveness only changes between phases, so this read is stable for
        // the whole dispatch. Crashed ranks never run again.
        if (engine->alive(rank)) {
          Comm comm(engine, rank);
          (*body)(comm);
        }
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      if (pending.fetch_sub(1, std::memory_order_release) == 1) {
        pending.notify_one();  // last rank out wakes the driving thread
      }
    }
  }

  ThreadEngine* engine;
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> generation{0};
  std::atomic<int> pending{0};
  std::atomic<bool> shutdown{false};
  const std::function<void(Comm&)>* body = nullptr;
  std::mutex error_mutex;  // cold path only
  std::exception_ptr error;
};

ThreadEngine::ThreadEngine(int ranks, MachineModel model)
    : Engine(ranks, std::move(model)), pool_(std::make_unique<Pool>(this)) {}

ThreadEngine::~ThreadEngine() = default;

void ThreadEngine::run_phase(const std::function<void(Comm&)>& body) {
  ++phase_;
  notify_phase_begin();
  pool_->run(body);
}

}  // namespace pcmd::sim
