// Virtual processor topologies.
//
// The paper's square-pillar decomposition connects PEs as a 2-D torus with
// 8-neighbour (Chebyshev) relationships; the underlying Cray T3E is a 3-D
// torus. Both are provided: the 2-D torus is the *virtual* PE arrangement the
// algorithms reason about, the 3-D torus is used by the machine cost model to
// charge hop counts for a message between two PEs.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace pcmd::sim {

// Coordinates on a 2-D torus of P = rows x cols processing elements.
struct Coord2 {
  int i = 0;  // row index
  int j = 0;  // column index
  friend constexpr bool operator==(const Coord2&, const Coord2&) = default;
};

std::ostream& operator<<(std::ostream& os, const Coord2& c);

// 2-D torus of PEs. Ranks are row-major: rank = i * cols + j.
class Torus2D {
 public:
  Torus2D(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }

  int rank_of(Coord2 c) const;       // wraps coordinates first
  Coord2 coord_of(int rank) const;   // inverse of rank_of
  Coord2 wrap(Coord2 c) const;       // periodic wrap into [0,rows)x[0,cols)

  // Signed minimal displacement from a to b per axis (each in
  // [-dim/2, dim/2]); Chebyshev distance derives from it.
  std::array<int, 2> displacement(Coord2 a, Coord2 b) const;

  // Chebyshev (8-neighbour) distance on the torus.
  int chebyshev_distance(Coord2 a, Coord2 b) const;

  // Manhattan distance on the torus — the hop count of dimension-ordered
  // routing on a 2-D torus network.
  int manhattan_distance(Coord2 a, Coord2 b) const;

  // The 8 neighbours of a PE in fixed order: (di, dj) for di, dj in
  // {-1, 0, +1} \ {(0,0)}, row-major. With small tori the same rank can
  // appear more than once (e.g. 2x2); callers needing unique ranks must
  // deduplicate.
  std::vector<int> neighbors8(int rank) const;

  // True if b is within Chebyshev distance 1 of a (i.e. a neighbour or a
  // itself).
  bool adjacent8(int a, int b) const;

 private:
  int rows_;
  int cols_;
};

// 3-D torus used for the physical machine hop model and for cube-shaped
// domain decompositions. Ranks are x-major then y then z:
// rank = (z * ny + y) * nx + x.
struct Coord3 {
  int x = 0;
  int y = 0;
  int z = 0;
  friend constexpr bool operator==(const Coord3&, const Coord3&) = default;
};

class Torus3D {
 public:
  Torus3D(int nx, int ny, int nz);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int size() const { return nx_ * ny_ * nz_; }

  int rank_of(Coord3 c) const;
  Coord3 coord_of(int rank) const;
  Coord3 wrap(Coord3 c) const;

  std::array<int, 3> displacement(Coord3 a, Coord3 b) const;
  int manhattan_distance(Coord3 a, Coord3 b) const;
  int chebyshev_distance(Coord3 a, Coord3 b) const;

  // The 26 Chebyshev neighbours in fixed order.
  std::vector<int> neighbors26(int rank) const;

 private:
  int nx_;
  int ny_;
  int nz_;
};

// Factory used by the machine model: embeds P virtual PEs into a near-cubic
// 3-D torus (like the T3E's physical network) and reports routing hops
// between virtual ranks. The embedding is the identity on rank ids.
class HopModel {
 public:
  // Builds a 3-D torus with dimensions as close to cubic as possible whose
  // size is >= ranks.
  explicit HopModel(int ranks);

  int hops(int src, int dst) const;
  const Torus3D& torus() const { return torus_; }

 private:
  Torus3D torus_;
};

}  // namespace pcmd::sim
