#include "sim/topology.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace pcmd::sim {

namespace {
int wrap_index(int v, int dim) {
  int w = v % dim;
  if (w < 0) w += dim;
  return w;
}

// Signed minimal displacement from a to b on a ring of size dim, in
// [-dim/2, dim/2].
int ring_displacement(int a, int b, int dim) {
  int d = wrap_index(b - a, dim);
  if (d > dim / 2) d -= dim;
  return d;
}
}  // namespace

std::ostream& operator<<(std::ostream& os, const Coord2& c) {
  return os << "PE(" << c.i << ", " << c.j << ")";
}

Torus2D::Torus2D(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("Torus2D: dimensions must be positive");
  }
}

int Torus2D::rank_of(Coord2 c) const {
  c = wrap(c);
  return c.i * cols_ + c.j;
}

Coord2 Torus2D::coord_of(int rank) const {
  if (rank < 0 || rank >= size()) {
    throw std::out_of_range("Torus2D: rank out of range");
  }
  return {rank / cols_, rank % cols_};
}

Coord2 Torus2D::wrap(Coord2 c) const {
  return {wrap_index(c.i, rows_), wrap_index(c.j, cols_)};
}

std::array<int, 2> Torus2D::displacement(Coord2 a, Coord2 b) const {
  return {ring_displacement(a.i, b.i, rows_),
          ring_displacement(a.j, b.j, cols_)};
}

int Torus2D::chebyshev_distance(Coord2 a, Coord2 b) const {
  const auto d = displacement(a, b);
  return std::max(std::abs(d[0]), std::abs(d[1]));
}

int Torus2D::manhattan_distance(Coord2 a, Coord2 b) const {
  const auto d = displacement(a, b);
  return std::abs(d[0]) + std::abs(d[1]);
}

std::vector<int> Torus2D::neighbors8(int rank) const {
  const Coord2 c = coord_of(rank);
  std::vector<int> out;
  out.reserve(8);
  for (int di = -1; di <= 1; ++di) {
    for (int dj = -1; dj <= 1; ++dj) {
      if (di == 0 && dj == 0) continue;
      out.push_back(rank_of({c.i + di, c.j + dj}));
    }
  }
  return out;
}

bool Torus2D::adjacent8(int a, int b) const {
  return chebyshev_distance(coord_of(a), coord_of(b)) <= 1;
}

Torus3D::Torus3D(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz) {
  if (nx < 1 || ny < 1 || nz < 1) {
    throw std::invalid_argument("Torus3D: dimensions must be positive");
  }
}

int Torus3D::rank_of(Coord3 c) const {
  c = wrap(c);
  return (c.z * ny_ + c.y) * nx_ + c.x;
}

Coord3 Torus3D::coord_of(int rank) const {
  if (rank < 0 || rank >= size()) {
    throw std::out_of_range("Torus3D: rank out of range");
  }
  const int x = rank % nx_;
  const int y = (rank / nx_) % ny_;
  const int z = rank / (nx_ * ny_);
  return {x, y, z};
}

Coord3 Torus3D::wrap(Coord3 c) const {
  return {wrap_index(c.x, nx_), wrap_index(c.y, ny_), wrap_index(c.z, nz_)};
}

std::array<int, 3> Torus3D::displacement(Coord3 a, Coord3 b) const {
  return {ring_displacement(a.x, b.x, nx_), ring_displacement(a.y, b.y, ny_),
          ring_displacement(a.z, b.z, nz_)};
}

int Torus3D::manhattan_distance(Coord3 a, Coord3 b) const {
  const auto d = displacement(a, b);
  return std::abs(d[0]) + std::abs(d[1]) + std::abs(d[2]);
}

int Torus3D::chebyshev_distance(Coord3 a, Coord3 b) const {
  const auto d = displacement(a, b);
  return std::max({std::abs(d[0]), std::abs(d[1]), std::abs(d[2])});
}

std::vector<int> Torus3D::neighbors26(int rank) const {
  const Coord3 c = coord_of(rank);
  std::vector<int> out;
  out.reserve(26);
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        out.push_back(rank_of({c.x + dx, c.y + dy, c.z + dz}));
      }
    }
  }
  return out;
}

HopModel::HopModel(int ranks) : torus_(1, 1, 1) {
  if (ranks < 1) {
    throw std::invalid_argument("HopModel: need at least one rank");
  }
  // Choose nx >= ny >= nz as close to cubic as possible with nx*ny*nz >= ranks.
  const int side = std::max(1, static_cast<int>(std::ceil(std::cbrt(ranks))));
  int nx = side, ny = side, nz = side;
  // Shrink dimensions greedily while capacity still suffices.
  while (nx * ny * (nz - 1) >= ranks && nz > 1) --nz;
  while (nx * (ny - 1) * nz >= ranks && ny > 1) --ny;
  while ((nx - 1) * ny * nz >= ranks && nx > 1) --nx;
  torus_ = Torus3D(nx, ny, nz);
}

int HopModel::hops(int src, int dst) const {
  if (src == dst) return 0;
  return torus_.manhattan_distance(torus_.coord_of(src), torus_.coord_of(dst));
}

}  // namespace pcmd::sim
