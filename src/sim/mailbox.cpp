#include "sim/mailbox.hpp"

#include <algorithm>

namespace pcmd::sim {

void Mailbox::push(Message msg) {
  std::lock_guard lock(mutex_);
  messages_.push_back(std::move(msg));
}

std::optional<Message> Mailbox::pop(int src, int tag, int before_phase) {
  std::lock_guard lock(mutex_);
  for (auto it = messages_.begin(); it != messages_.end(); ++it) {
    if (it->src == src && it->tag == tag && it->phase < before_phase) {
      Message msg = std::move(*it);
      messages_.erase(it);
      return msg;
    }
  }
  return std::nullopt;
}

bool Mailbox::has(int src, int tag, int before_phase) const {
  std::lock_guard lock(mutex_);
  return std::any_of(messages_.begin(), messages_.end(), [&](const Message& m) {
    return m.src == src && m.tag == tag && m.phase < before_phase;
  });
}

std::vector<int> Mailbox::sources_with(int tag, int before_phase) const {
  std::lock_guard lock(mutex_);
  std::vector<int> sources;
  for (const auto& m : messages_) {
    if (m.tag == tag && m.phase < before_phase) sources.push_back(m.src);
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return sources;
}

std::size_t Mailbox::size() const {
  std::lock_guard lock(mutex_);
  return messages_.size();
}

}  // namespace pcmd::sim
