#include "sim/comm.hpp"

namespace pcmd::sim {

SeqEngine::SeqEngine(int ranks, MachineModel model)
    : Engine(ranks, std::move(model)) {}

void SeqEngine::run_phase(const std::function<void(Comm&)>& body) {
  ++phase_;
  notify_phase_begin();
  for (int r = 0; r < size(); ++r) {
    if (!alive(r)) continue;  // crashed ranks never run again
    Comm comm(this, r);
    body(comm);
  }
}

}  // namespace pcmd::sim
