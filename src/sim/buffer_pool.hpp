// Reusable message-buffer pool.
//
// The virtual network hands Buffer ownership down the send path (sender →
// mailbox → receiver), so every logical message needs one owned buffer — but
// the *capacity* behind short-lived buffers (retransmitted frames, corrupt
// copies drained by the reliable channel) can be recycled instead of freed.
// BufferPool is a bounded freelist: release() parks a spent buffer, and
// acquire() hands its capacity back out as an empty buffer, so steady-state
// framing stops hitting the allocator.
//
// Not thread-safe by design: a pool belongs to exactly one rank's state
// (ReliableChannel is per-rank and only touched by that rank's phase body),
// matching the rest of the per-rank scratch in the engines.
#pragma once

#include "sim/message.hpp"
#include "util/hot.hpp"

#include <cstddef>
#include <utility>
#include <vector>

namespace pcmd::sim {

class BufferPool {
 public:
  explicit BufferPool(std::size_t max_buffers = 16)
      : max_buffers_(max_buffers) {}

  // An empty buffer, reusing the capacity of a previously released one when
  // available.
  PCMD_HOT Buffer acquire() {
    if (free_.empty()) return Buffer{};
    Buffer out = std::move(free_.back());
    free_.pop_back();
    out.clear();
    return out;
  }

  // Parks a spent buffer for reuse; beyond max_buffers the buffer is simply
  // freed, bounding the idle memory the pool can pin.
  PCMD_HOT void release(Buffer&& buffer) {
    if (free_.size() < max_buffers_) {
      free_.push_back(std::move(buffer));
    }
  }

  std::size_t idle() const { return free_.size(); }
  std::size_t max_buffers() const { return max_buffers_; }

 private:
  std::size_t max_buffers_;
  std::vector<Buffer> free_;
};

}  // namespace pcmd::sim
