// Logical-role membership for self-healing SPMD programs.
//
// The recovery design separates two identities that PR 3 conflated:
//
//   * a *role* is a logical PE of the paper's P-rank decomposition — it owns
//     permanent cells, appears in the column map, contributes DLB busy
//     times, and fills logical collective slots;
//   * a *physical rank* is a slot on the virtual machine (an Engine rank)
//     that *hosts* a role. With S spare ranks the engine has P + S physical
//     ranks, the last S of which start parked and roleless.
//
// The whole MD program computes in role space; only the comm boundary
// (ParallelMd::send_to / recv_from) translates role → physical. When a host
// dies, fail_over() bumps the membership *epoch* and reassigns the role to a
// spare — or retires the role if no spare is available (PR 3's degraded
// mode). Because everything above the boundary is written in role space,
// failover changes no arithmetic: collectives combine in role order, maps
// store role ids, and the resumed trajectory is bitwise identical to an
// undisturbed run.
//
// This class is plain bookkeeping, mutated only by the recovery driver
// between phases, and read (const) by phase bodies — same publication rule
// as Engine::alive.
#pragma once

#include <vector>

namespace pcmd::sim {

class Membership {
 public:
  // `roles` logical PEs hosted on `physical_ranks` >= roles engine ranks.
  // Role l starts on physical rank l; physical ranks [roles, physical_ranks)
  // start as parked spares.
  Membership(int roles, int physical_ranks);

  int roles() const { return roles_; }
  int physical_ranks() const { return physical_; }

  // Bumped by one on every fail_over. Epoch 0 is the initial assignment.
  int epoch() const { return epoch_; }

  // Physical host of a role; -1 if the role is retired (host died with no
  // spare left).
  int physical_of(int role) const;

  // Role hosted by a physical rank; -1 for spares and roleless ranks.
  int role_of(int physical) const;

  // True if the role currently has a host.
  bool role_alive(int role) const { return physical_of(role) >= 0; }

  // Number of roles with a live host.
  int alive_roles() const;

  // True if this physical rank is an unconsumed spare.
  bool is_spare(int physical) const;
  int spares_available() const;

  // The host of `role` died. Bumps the epoch; promotes the next spare and
  // returns its physical rank, or retires the role and returns -1 when the
  // spare pool is empty. The caller is responsible for unparking the
  // returned rank and restoring the role's state onto it.
  int fail_over(int role);

  // A spare died before ever being promoted: remove it from the pool.
  void spare_died(int physical);

 private:
  int roles_;
  int physical_;
  int epoch_ = 0;
  std::vector<int> physical_of_;  // role -> physical, -1 retired
  std::vector<int> role_of_;      // physical -> role, -1 spare/roleless
  std::vector<int> spare_pool_;   // unconsumed spares, promoted in order
};

}  // namespace pcmd::sim
