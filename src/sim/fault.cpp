#include "sim/fault.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace pcmd::sim {

namespace {

// SplitMix64 finalizer — the per-message decisions hash through this so a
// message's fate depends only on its identity, never on execution order.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_message(std::uint64_t seed, int src, int dst, int tag,
                           int phase, std::uint32_t attempt,
                           std::uint64_t salt) {
  std::uint64_t h = mix(seed ^ (salt * 0x9e3779b97f4a7c15ull));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(phase)));
  h = mix(h ^ attempt);
  return h;
}

// 53 high bits -> double in [0, 1), same construction as util/rng.
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double parse_number(const std::string& token, const std::string& context) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan::parse: bad number '" + token +
                                "' in '" + context + "'");
  }
}

int parse_int(const std::string& token, const std::string& context) {
  const double value = parse_number(token, context);
  const int i = static_cast<int>(value);
  if (static_cast<double>(i) != value) {
    throw std::invalid_argument("FaultPlan::parse: expected integer '" +
                                token + "' in '" + context + "'");
  }
  return i;
}

// Splits "a<sep>b" exactly once; throws when sep is absent.
std::pair<std::string, std::string> split_once(const std::string& text,
                                               char sep,
                                               const std::string& context) {
  const auto pos = text.find(sep);
  if (pos == std::string::npos) {
    throw std::invalid_argument("FaultPlan::parse: expected '" +
                                std::string(1, sep) + "' in '" + context +
                                "'");
  }
  return {text.substr(0, pos), text.substr(pos + 1)};
}

std::string num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

bool FaultPlan::empty() const {
  return drop_rate == 0.0 && corrupt_rate == 0.0 && delay_rate == 0.0 &&
         degraded_links.empty() && stalls.empty() && crashes.empty() &&
         sdcs.empty();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    const auto [key, value] = split_once(item, '=', item);
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_number(value, item));
    } else if (key == "drop") {
      plan.drop_rate = parse_number(value, item);
    } else if (key == "corrupt") {
      plan.corrupt_rate = parse_number(value, item);
    } else if (key == "delay") {
      const auto [rate, seconds] = split_once(value, ':', item);
      plan.delay_rate = parse_number(rate, item);
      plan.delay_seconds = parse_number(seconds, item);
    } else if (key == "degrade") {
      const auto [links, factor] = split_once(value, 'x', item);
      const auto [a, b] = split_once(links, '-', item);
      plan.degraded_links.push_back(
          {parse_int(a, item), parse_int(b, item), parse_number(factor, item)});
    } else if (key == "stall") {
      const auto [rank, rest] = split_once(value, '@', item);
      const auto [window, factor] = split_once(rest, 'x', item);
      const auto [from, until] = split_once(window, '-', item);
      plan.stalls.push_back({parse_int(rank, item), parse_number(from, item),
                             parse_number(until, item),
                             parse_number(factor, item)});
    } else if (key == "crash") {
      const auto [rank, at] = split_once(value, '@', item);
      plan.crashes.push_back({parse_int(rank, item), parse_number(at, item)});
    } else if (key == "sdc") {
      const auto [rank, rest] = split_once(value, '@', item);
      const auto [window, factor] = split_once(rest, 'x', item);
      const auto [from, until] = split_once(window, '-', item);
      plan.sdcs.push_back({parse_int(rank, item), parse_number(from, item),
                           parse_number(until, item),
                           parse_number(factor, item)});
    } else {
      throw std::invalid_argument("FaultPlan::parse: unknown key '" + key +
                                  "' (expected seed/drop/corrupt/delay/"
                                  "degrade/stall/crash/sdc)");
    }
  }
  for (const double rate :
       {plan.drop_rate, plan.corrupt_rate, plan.delay_rate}) {
    if (rate < 0.0 || rate > 1.0) {
      throw std::invalid_argument(
          "FaultPlan::parse: fault rates must lie in [0, 1]");
    }
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (drop_rate > 0.0) os << ",drop=" << num(drop_rate);
  if (corrupt_rate > 0.0) os << ",corrupt=" << num(corrupt_rate);
  if (delay_rate > 0.0) {
    os << ",delay=" << num(delay_rate) << ':' << num(delay_seconds);
  }
  for (const auto& d : degraded_links) {
    os << ",degrade=" << d.rank_a << '-' << d.rank_b << 'x' << num(d.factor);
  }
  for (const auto& s : stalls) {
    os << ",stall=" << s.rank << '@' << num(s.from) << '-' << num(s.until)
       << 'x' << num(s.factor);
  }
  for (const auto& c : crashes) {
    os << ",crash=" << c.rank << '@' << num(c.at);
  }
  for (const auto& s : sdcs) {
    os << ",sdc=" << s.rank << '@' << num(s.from) << '-' << num(s.until)
       << 'x' << num(s.factor);
  }
  return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

FaultInjector::SendFault FaultInjector::send_fault(int src, int dst, int tag,
                                                   int phase,
                                                   std::uint32_t attempt)
    const {
  SendFault fault;
  if (plan_.drop_rate > 0.0 &&
      to_unit(hash_message(plan_.seed, src, dst, tag, phase, attempt, 1)) <
          plan_.drop_rate) {
    fault.drop = true;
  }
  if (plan_.corrupt_rate > 0.0) {
    const std::uint64_t h =
        hash_message(plan_.seed, src, dst, tag, phase, attempt, 2);
    if (to_unit(h) < plan_.corrupt_rate) {
      fault.corrupt = true;
      const std::uint64_t h2 =
          hash_message(plan_.seed, src, dst, tag, phase, attempt, 3);
      fault.corrupt_byte = static_cast<std::size_t>(h2 >> 8);
      fault.corrupt_mask = static_cast<std::uint8_t>(h2 & 0xff);
      if (fault.corrupt_mask == 0) fault.corrupt_mask = 0x40;
    }
  }
  if (plan_.delay_rate > 0.0 &&
      to_unit(hash_message(plan_.seed, src, dst, tag, phase, attempt, 4)) <
          plan_.delay_rate) {
    fault.extra_delay = plan_.delay_seconds;
  }
  for (const auto& d : plan_.degraded_links) {
    const bool on_link =
        d.rank_b < 0 ? (src == d.rank_a || dst == d.rank_a)
                     : ((src == d.rank_a && dst == d.rank_b) ||
                        (src == d.rank_b && dst == d.rank_a));
    if (on_link) fault.link_factor *= d.factor;
  }
  return fault;
}

double FaultInjector::stall_extra(int rank, double clock,
                                  double seconds) const {
  double extra = 0.0;
  for (const auto& s : plan_.stalls) {
    if (s.rank != rank || s.factor <= 1.0) continue;
    // Overlap of [clock, clock + seconds) with the stall window, stretched
    // by (factor - 1).
    const double lo = std::max(clock, s.from);
    const double hi = std::min(clock + seconds, s.until);
    if (hi > lo) extra += (hi - lo) * (s.factor - 1.0);
  }
  return extra;
}

std::optional<double> FaultInjector::crash_time(int rank) const {
  std::optional<double> earliest;
  for (const auto& c : plan_.crashes) {
    if (c.rank != rank) continue;
    if (!earliest || c.at < *earliest) earliest = c.at;
  }
  return earliest;
}

bool FaultInjector::crashed(int rank, double clock) const {
  const auto at = crash_time(rank);
  return at.has_value() && clock >= *at;
}

double FaultInjector::sdc_factor(int rank, double clock) const {
  double factor = 1.0;
  for (const auto& s : plan_.sdcs) {
    if (s.rank != rank || s.factor == 1.0) continue;
    if (clock >= s.from && clock < s.until) factor *= s.factor;
  }
  return factor;
}

void FaultInjector::count_drop() {
  std::lock_guard lock(mutex_);
  ++counters_.messages_dropped;
}

void FaultInjector::count_corrupt() {
  std::lock_guard lock(mutex_);
  ++counters_.messages_corrupted;
}

void FaultInjector::count_delay() {
  std::lock_guard lock(mutex_);
  ++counters_.messages_delayed;
}

void FaultInjector::count_stall(double seconds) {
  std::lock_guard lock(mutex_);
  ++counters_.stalled_advances;
  counters_.stall_seconds += seconds;
}

void FaultInjector::count_sdc() {
  std::lock_guard lock(mutex_);
  ++counters_.sdc_events;
}

FaultCounters FaultInjector::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

void FaultInjector::reset_counters() {
  std::lock_guard lock(mutex_);
  counters_ = FaultCounters{};
}

}  // namespace pcmd::sim
