// SPMD protocol checker: a debug-mode observer that records every
// send/recv/collective event the engine executes and verifies the protocol
// invariants the permanent-cell scheme relies on:
//
//   * every send is consumed by a matching recv (no leaked messages),
//   * no recv without a sender — instead of deadlocking (as real MPI would)
//     the violation is reported with rank/phase provenance,
//   * collective arity: every collective begun is completed by all ranks
//     with the same op and width (a lone barrier_begin is a future deadlock),
//   * virtual clocks are monotone per rank,
//   * optionally, all point-to-point traffic is confined to 8-neighbours of
//     a 2-D torus — the paper's regular-communication guarantee (PAPER.md
//     Section 3): permanent cells exist precisely so that no DLB state ever
//     requires a non-neighbour message,
//   * message-level happens-before: every rank carries a vector clock,
//     advanced on send/recv/collective. Engines stamp their cross-rank
//     shared-state touch points with PCMD_HB_ACCESS(comm, object, is_write,
//     site) (sim/comm.hpp); any write/write or read/write pair on one object
//     that no message or collective path orders is reported as an
//     unordered-access violation. This catches *protocol* races that TSan
//     cannot see: the mailbox mutex happily serializes the bytes of two
//     causally concurrent touches, so the interleaving is data-race-free yet
//     schedule-dependent. Detection depends only on the message graph, so
//     SeqEngine and ThreadEngine report identical races.
//
// Usage: attach to an Engine with Engine::set_checker before the first
// phase; call report() / require_clean() at a quiescent point (a phase
// boundary where the program expects all traffic drained, e.g. the end of an
// MD step). The hooks are compiled into the engines only when
// PCMD_CHECKER_ENABLED is 1 (the PCMD_CHECKER CMake option, default ON);
// with no checker attached they cost one predicted-not-taken branch.
//
// Thread-safe: the thread engine invokes hooks concurrently from all ranks.
#pragma once

#include "sim/comm.hpp"
#include "sim/topology.hpp"

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace pcmd::sim {

// One recorded protocol violation, with enough provenance to find the
// offending phase body.
struct ProtocolViolation {
  enum class Kind {
    kUnconsumedSend,     // message sent but never received
    kMissingSender,      // recv with no matching send (MPI would deadlock)
    kCollectiveArity,    // collective begun by a strict subset of ranks
    kCollectiveMismatch, // ranks disagreed on op or width
    kClockRegression,    // a rank's virtual clock moved backwards
    kNonNeighborMessage, // point-to-point traffic outside the torus stencil
    kUnorderedAccess,    // two ranks touched shared state with no
                         // happens-before path between the touches
  };

  Kind kind;
  int rank = -1;   // rank where the violation happened (receiver for
                   // kMissingSender, sender otherwise)
  int phase = -1;  // phase of the offending event (-1: outside any phase)
  std::string detail;
};

const char* to_string(ProtocolViolation::Kind kind);

struct ProtocolReport {
  std::vector<ProtocolViolation> violations;

  bool ok() const { return violations.empty(); }
  std::size_t count(ProtocolViolation::Kind kind) const;
  bool has(ProtocolViolation::Kind kind) const { return count(kind) > 0; }
  // All violations, one per line, "kind rank=R phase=P: detail".
  std::string to_string() const;
};

class ProtocolChecker {
 public:
  struct Options {
    // When set, every send must target an 8-neighbour (or the sender itself)
    // on this torus; rank ids are torus ranks. Unset disables the check.
    std::optional<Torus2D> neighbor_torus;
    // Tags exempt from the neighbour rule (e.g. gather-to-root diagnostics).
    std::set<int> exempt_tags;
  };

  ProtocolChecker() = default;
  explicit ProtocolChecker(Options options);

  // ---- event hooks, called by the engine (or directly by tests) ----
  // Engine::set_checker calls this with the engine's rank count; collectives
  // are then checked against it instead of the largest rank seen in traffic.
  void on_attach(int ranks);
  void on_phase_begin(int phase);
  void on_send(int src, int dst, int tag, int phase, std::size_t bytes);
  // `sent_phase` identifies which pending send this recv consumed.
  void on_recv(int dst, int src, int tag, int recv_phase, int sent_phase);
  void on_recv_missing(int dst, int src, int tag, int phase);
  void on_clock(int rank, double clock);
  void on_collective_begin(int rank, int phase, int op, std::size_t width);
  void on_collective_end(int rank, int phase);
  // Shared-state access stamp for the happens-before detector (engines route
  // PCMD_HB_ACCESS here). `site` names the touching code path in the span
  // vocabulary ("dlb", "halo", ...) and must outlive the checker (a string
  // literal). Accesses are staged with a vector-clock snapshot and judged in
  // a canonical (phase, rank, order-within-rank) order at the next phase
  // boundary or report(), so both engines report identical races.
  void on_access(int rank, HbObject object, bool is_write, const char* site,
                 int phase);

  // ---- verification ----
  // Immediate violations plus trace-derived ones (unconsumed sends,
  // incomplete collectives). Call at a quiescent point: messages legally
  // still in flight are indistinguishable from leaked ones.
  ProtocolReport report() const;
  // Throws ProtocolError (sim/comm.hpp) with the full report when dirty.
  void require_clean() const;
  // Forgets the recorded trace and violations; options are kept.
  void reset();

  // Events seen so far (for overhead accounting and tests).
  std::uint64_t events_recorded() const;

 private:
  using VectorClock = std::vector<std::uint64_t>;

  struct PendingSend {
    int src, dst, tag, phase;
    std::size_t bytes;
    VectorClock vc;  // sender's clock at the send: joined by the receiver
  };
  struct CollectiveTrace {
    int op = 0;
    std::size_t width = 0;
    std::vector<int> begin_ranks;  // in arrival order
    int begins = 0;
    int ends = 0;
    VectorClock vc;  // join of all begin clocks: joined by every end
  };
  // One stamped shared-state touch, staged until a deterministic flush
  // point. `epoch` is the acting rank's own clock component after the
  // access tick — the value peers must have joined for the touch to be
  // ordered before theirs.
  struct StagedAccess {
    int rank = -1;
    int phase = -1;
    std::uint64_t seq = 0;  // order within the rank (deterministic)
    std::string object;     // "kind/index"
    bool write = false;
    const char* site = "";
    std::uint64_t epoch = 0;
    VectorClock vc;
  };
  struct LastAccess {
    std::uint64_t epoch = 0;  // 0: no access recorded
    int phase = -1;
    const char* site = "";
  };
  struct ObjectHistory {
    std::map<int, LastAccess> writes;  // by rank
    std::map<int, LastAccess> reads;   // by rank
  };

  void record(ProtocolViolation::Kind kind, int rank, int phase,
              std::string detail);
  // Ticks `rank`'s own component and returns its clock (grown on demand).
  VectorClock& tick(int rank);
  static void join(VectorClock& into, const VectorClock& other);
  static std::uint64_t component(const VectorClock& vc, int rank);
  // Judges all staged accesses in canonical order against the per-object
  // history. Called under mutex_ from on_phase_begin and report(); mutable
  // HB state keeps report() const.
  void flush_accesses_locked() const;

  Options options_;
  mutable std::mutex mutex_;
  int current_phase_ = 0;
  int attached_ranks_ = 0;  // 0: infer from traffic
  int max_rank_seen_ = -1;
  std::uint64_t events_ = 0;
  std::vector<PendingSend> pending_;
  std::vector<double> last_clock_;           // per rank, grown on demand
  std::vector<std::size_t> begin_seq_;       // collectives begun per rank
  std::vector<std::size_t> end_seq_;         // collectives completed per rank
  std::vector<CollectiveTrace> collectives_; // by slot index
  std::vector<ProtocolViolation> violations_;
  // ---- happens-before state ----
  std::vector<VectorClock> vc_;              // per rank, grown on demand
  std::vector<std::uint64_t> access_seq_;    // per rank, grown on demand
  mutable std::vector<StagedAccess> staged_;
  mutable std::map<std::string, ObjectHistory> objects_;
  mutable std::set<std::string> reported_pairs_;  // dedupe unordered pairs
  mutable std::vector<ProtocolViolation> hb_violations_;
};

}  // namespace pcmd::sim
