// Machine cost model: maps counted work and communication to virtual
// seconds. Calibrated so that paper-scale configurations land in the range
// of execution times the paper reports for the Cray T3E (DEC Alpha EV5 at
// 300 MHz, 3-D torus, 2.8 GB/s raw link bandwidth with much lower achieved
// MPI throughput).
#pragma once

#include <cstdint>
#include <string>

namespace pcmd::sim {

struct MachineModel {
  std::string name = "t3e";

  // --- compute ---
  // Seconds per pair distance evaluation in the force loop (includes the
  // fraction that falls inside the cut-off and pays the full LJ evaluation).
  double pair_cost = 1.5e-6;
  // Seconds per owned particle per step (integration, re-binning).
  double particle_cost = 2.0e-6;
  // Seconds per owned cell per step (stencil bookkeeping).
  double cell_cost = 0.5e-6;

  // --- communication ---
  // Per-message fixed software latency (seconds).
  double msg_latency = 2.0e-5;
  // Additional per-network-hop latency (seconds).
  double hop_latency = 1.0e-6;
  // Achieved point-to-point bandwidth (bytes/second).
  double bandwidth = 3.0e8;
  // Per-participant factor for tree collectives: a barrier/allreduce over P
  // ranks costs collective_rounds(P) * (msg_latency + collective_overhead).
  double collective_overhead = 5.0e-6;

  // Transfer time for one message of `bytes` crossing `hops` network hops.
  double message_time(std::uint64_t bytes, int hops) const;

  // Cost of a tree-structured collective over `ranks` participants carrying
  // `bytes` of payload.
  double collective_time(int ranks, std::uint64_t bytes) const;

  // --- presets ---
  // Calibrated T3E-like machine (default).
  static MachineModel t3e();
  // Zero-cost communication; isolates pure compute imbalance.
  static MachineModel ideal_network();
  // Commodity cluster: faster CPU, slower network (higher latency).
  static MachineModel beowulf();
};

}  // namespace pcmd::sim
