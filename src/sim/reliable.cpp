#include "sim/reliable.hpp"

#include "util/checksum.hpp"

#include <cstring>
#include <string>

namespace pcmd::sim {

namespace {

constexpr std::uint32_t kFrameMagic = 0x52454C41u;  // "RELA"

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void write_u32(std::uint8_t* p, std::uint32_t v) {
  std::memcpy(p, &v, sizeof(v));
}

}  // namespace

// Frame layout: [magic][seq][attempt][crc] then the payload; crc covers
// seq, attempt and payload, so a single flipped byte anywhere in the frame
// fails either the magic or the crc check.
PCMD_HOT Buffer ReliableChannel::frame(std::uint32_t seq,
                                       std::uint32_t attempt,
                                       const Buffer& payload) {
  Buffer out = pool_.acquire();
  out.resize(kFrameHeaderBytes + payload.size());
  write_u32(out.data() + 0, kFrameMagic);
  write_u32(out.data() + 4, seq);
  write_u32(out.data() + 8, attempt);
  std::uint32_t crc = pcmd::crc32(out.data() + 4, 8);
  crc = pcmd::crc32(payload.data(), payload.size(), crc);
  write_u32(out.data() + 12, crc);
  if (!payload.empty()) {
    std::memcpy(out.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  return out;
}

PCMD_HOT std::optional<std::uint32_t> ReliableChannel::parse_in_place(
    Buffer& raw) const {
  if (raw.size() < kFrameHeaderBytes) return std::nullopt;
  if (read_u32(raw.data()) != kFrameMagic) return std::nullopt;
  std::uint32_t crc = pcmd::crc32(raw.data() + 4, 8);
  crc = pcmd::crc32(raw.data() + kFrameHeaderBytes,
                    raw.size() - kFrameHeaderBytes, crc);
  if (crc != read_u32(raw.data() + 12)) return std::nullopt;
  const std::uint32_t seq = read_u32(raw.data() + 4);
  raw.erase(raw.begin(), raw.begin() + kFrameHeaderBytes);
  return seq;
}

void ReliableChannel::send(Comm& comm, int dst, int tag,
                           const Buffer& payload) {
  const std::uint32_t seq = send_seq_[{dst, tag}]++;
  counters_.sends += 1;
  double backoff = 0.0;
  double step = policy_.base_backoff;
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) counters_.retransmissions += 1;
    const auto outcome = comm.send_attempt(
        dst, tag, frame(seq, static_cast<std::uint32_t>(attempt), payload),
        static_cast<std::uint32_t>(attempt), backoff);
    if (outcome.delivered_intact()) return;
    backoff += step;
    step *= policy_.backoff_factor;
  }
  throw PeerDeadError(
      dst, tag,
      "ReliableChannel::send: message to rank " + std::to_string(dst) +
          " tag " + std::to_string(tag) + " seq " + std::to_string(seq) +
          " lost after " + std::to_string(policy_.max_attempts) + " attempts");
}

Buffer ReliableChannel::recv(Comm& comm, int src, int tag) {
  std::uint32_t& expected = recv_seq_[{src, tag}];
  for (;;) {
    Buffer raw = comm.recv(src, tag);
    const auto seq = parse_in_place(raw);
    if (!seq) {
      counters_.corrupt_discarded += 1;
      pool_.release(std::move(raw));
      continue;
    }
    if (*seq < expected) {  // stale duplicate
      pool_.release(std::move(raw));
      continue;
    }
    if (*seq > expected) {
      throw ProtocolError("ReliableChannel::recv: sequence gap from rank " +
                          std::to_string(src) + " tag " + std::to_string(tag) +
                          " (expected " + std::to_string(expected) + ", got " +
                          std::to_string(*seq) + ")");
    }
    expected += 1;
    return raw;  // header already stripped in place
  }
}

std::optional<Buffer> ReliableChannel::recv_deadline(Comm& comm, int src,
                                                     int tag, double timeout) {
  std::uint32_t& expected = recv_seq_[{src, tag}];
  for (;;) {
    auto raw = comm.recv_deadline(src, tag, timeout);
    if (!raw) {
      counters_.recv_timeouts += 1;
      return std::nullopt;
    }
    const auto seq = parse_in_place(*raw);
    if (!seq) {
      counters_.corrupt_discarded += 1;
      pool_.release(std::move(*raw));
      continue;
    }
    if (*seq < expected) {
      pool_.release(std::move(*raw));
      continue;
    }
    if (*seq > expected) {
      throw ProtocolError(
          "ReliableChannel::recv_deadline: sequence gap from rank " +
          std::to_string(src) + " tag " + std::to_string(tag) + " (expected " +
          std::to_string(expected) + ", got " + std::to_string(*seq) + ")");
    }
    expected += 1;
    return std::move(*raw);  // header already stripped in place
  }
}

}  // namespace pcmd::sim
