// Deterministic fault injection for the virtual parallel machine.
//
// A FaultPlan is a *seeded schedule* of faults; a FaultInjector attached to
// an Engine (Engine::set_fault_injector) applies it to every modelled
// communication and compute event. Every per-message decision is a pure
// function of (plan seed, src, dst, tag, phase, attempt) and every rank
// fault is keyed on virtual time, so an injected run is bitwise identical
// on SeqEngine and ThreadEngine and across repeated runs — chaos you can
// put in a regression test.
//
// Fault taxonomy (the Cray T3E analogue in parentheses):
//   * message drop        — a link swallows a packet (dropped flit/CRC-fail
//                           discard in the torus router);
//   * payload corruption  — one byte of the payload is XOR-flipped in
//                           flight (undetected link bit error; caught by the
//                           wire checksums this PR adds);
//   * delivery delay      — a message takes an extra fixed latency (adaptive
//                           re-route around a hot/failed link);
//   * link degradation    — all traffic between two ranks pays a bandwidth/
//                           latency multiplier (a flaky link running at
//                           reduced width);
//   * transient stall     — a rank's compute is slowed by a factor inside a
//                           virtual-time window (OS jitter, memory
//                           throttling, a co-scheduled job);
//   * permanent crash     — a rank stops executing at a chosen virtual time
//                           and never returns (dead PE). Takes effect at the
//                           next phase boundary; see Engine::alive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace pcmd::sim {

// The declarative fault schedule. Default-constructed = no faults.
struct FaultPlan {
  std::uint64_t seed = 1;

  // Per-message-attempt fault rates in [0, 1].
  double drop_rate = 0.0;
  double corrupt_rate = 0.0;
  double delay_rate = 0.0;
  double delay_seconds = 0.0;  // extra latency when a delay fires

  // Link degradation: message_time is multiplied by `factor` for traffic
  // between the two ranks (both directions). rank_b == -1 degrades every
  // link touching rank_a.
  struct Degrade {
    int rank_a = -1;
    int rank_b = -1;
    double factor = 1.0;
  };
  std::vector<Degrade> degraded_links;

  // Transient stall: compute charged to `rank` while its clock is inside
  // [from, until) takes `factor` times as long.
  struct Stall {
    int rank = -1;
    double from = 0.0;
    double until = 0.0;  // use a large value for "until the end of the run"
    double factor = 1.0;
  };
  std::vector<Stall> stalls;

  // Permanent crash of `rank` at virtual time `at`.
  struct Crash {
    int rank = -1;
    double at = 0.0;
  };
  std::vector<Crash> crashes;

  // Silent data corruption: while `rank`'s clock is inside [from, until),
  // once per MD step its local state is scrambled by `factor` (the program
  // decides what "scrambled" means — ParallelMd multiplies one particle's
  // velocity). Models an undetected memory/FPU error: nothing on the wire is
  // wrong, so only a semantic watchdog can catch it.
  struct Sdc {
    int rank = -1;
    double from = 0.0;
    double until = 0.0;
    double factor = 1.0;
  };
  std::vector<Sdc> sdcs;

  bool empty() const;
  // True when the plan contains neither permanent crashes nor silent state
  // corruption — the regime where the reliable channel must mask every
  // fault bit-exactly.
  bool transient_only() const { return crashes.empty() && sdcs.empty(); }

  // Compact textual form, round-tripping through parse():
  //   "seed=7,drop=0.05,corrupt=0.01,delay=0.1:2e-4,
  //    degrade=3-4x8,stall=2@0.1-0.5x4,crash=5@0.25,sdc=2@0.1-0.2x1e3"
  // (drop/corrupt are rates; delay is rate:seconds; degrade is a-bxfactor;
  // stall and sdc are rank@from-untilxfactor; crash is rank@time). Throws
  // std::invalid_argument with the offending token on malformed specs.
  static FaultPlan parse(const std::string& spec);
  std::string to_string() const;
};

// Running totals of injected faults, summed over all ranks and links.
// Order-independent sums, so they are identical across engines.
struct FaultCounters {
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_corrupted = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t stalled_advances = 0;
  double stall_seconds = 0.0;
  std::uint64_t sdc_events = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  // Decision for one transmission attempt of one message. Pure in the
  // message identity; calling it does not change future decisions.
  struct SendFault {
    bool drop = false;
    bool corrupt = false;
    std::size_t corrupt_byte = 0;   // index into the payload (mod its size)
    std::uint8_t corrupt_mask = 0;  // XOR mask, never 0 when corrupt
    double extra_delay = 0.0;
    double link_factor = 1.0;  // multiplier on message_time
  };
  SendFault send_fault(int src, int dst, int tag, int phase,
                       std::uint32_t attempt) const;

  // Extra virtual seconds a compute interval [clock, clock + seconds) on
  // `rank` is stretched by the active stall windows.
  double stall_extra(int rank, double clock, double seconds) const;

  // Earliest crash time scheduled for `rank`, if any.
  std::optional<double> crash_time(int rank) const;
  // True when `rank` has crashed by virtual time `clock`.
  bool crashed(int rank, double clock) const;

  // Product of the factors of the sdc windows active on `rank` at `clock`;
  // 1.0 when none. Pure in (rank, clock), so both engines agree on exactly
  // which steps are corrupted.
  double sdc_factor(int rank, double clock) const;

  // ---- accounting (thread-safe; engines call these as faults fire) ----
  void count_drop();
  void count_corrupt();
  void count_delay();
  void count_stall(double seconds);
  void count_sdc();
  FaultCounters counters() const;
  void reset_counters();

 private:
  FaultPlan plan_;
  mutable std::mutex mutex_;
  FaultCounters counters_;
};

}  // namespace pcmd::sim
