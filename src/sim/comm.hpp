// The SPMD communication interface and the engine that executes SPMD
// programs on the virtual parallel machine.
//
// Programming model (BSP phases):
//   * A program is driven as a sequence of *phases*. In each phase the same
//     callable runs once per rank (sequentially in SeqEngine, concurrently in
//     ThreadEngine).
//   * `send` is asynchronous and may target any rank.
//   * `recv` may only consume messages sent in an *earlier* phase. Receiving
//     a message that was never sent (or was sent in the same phase) is a
//     protocol error and throws — this guarantee is what makes the
//     sequential and threaded engines bitwise-identical.
//   * Collectives are split-phase: `collective_begin` in one phase,
//     `collective_end` in a later phase.
//
// Virtual time: each rank carries a clock. `advance` charges modelled compute
// time; `recv` forwards the clock to the message arrival time if the message
// is "still in flight"; collectives synchronise clocks to the latest
// participant plus a tree-reduction cost. MPI_Wtime in the paper's programs
// maps to Comm::clock().
#pragma once

#include "sim/cost_model.hpp"
#include "sim/mailbox.hpp"
#include "sim/message.hpp"
#include "sim/topology.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace pcmd::sim {

class ProtocolChecker;
class TraceSink;

// Reduction operators for collectives.
enum class ReduceOp { kSum, kMax, kMin };

// Per-rank accounting, inspectable after (or during) a run.
struct RankCounters {
  double compute_seconds = 0.0;    // charged via advance()
  double comm_wait_seconds = 0.0;  // time the clock jumped forward in recv()
  double collective_seconds = 0.0; // cost charged by collective_end()
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
};

class Engine;

// Lightweight per-rank handle passed to phase bodies.
class Comm {
 public:
  Comm(Engine* engine, int rank) : engine_(engine), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const;

  // Charges modelled compute time to this rank's clock.
  void advance(double seconds);

  // Current virtual time on this rank.
  double clock() const;

  // Asynchronous point-to-point send; the payload is charged to the sender's
  // counters and arrives at `clock() + message_time(bytes, hops)`.
  void send(int dst, int tag, Buffer payload);

  // Receives the message sent by `src` with `tag` in an earlier phase.
  // Throws ProtocolError if no such message exists.
  Buffer recv(int src, int tag);

  // Non-throwing variant.
  std::optional<Buffer> try_recv(int src, int tag);

  // True if recv(src, tag) would succeed.
  bool has_message(int src, int tag) const;

  // Sources with a visible message of `tag`, sorted (deterministic).
  std::vector<int> sources_with(int tag) const;

  // Split-phase collective over all ranks. Every rank must call begin with
  // the same op and width in the same phase, then end in a later phase.
  void collective_begin(ReduceOp op, std::span<const double> values);
  std::vector<double> collective_end();

  // Convenience wrappers for the common scalar cases.
  void reduce_begin(ReduceOp op, double value) {
    collective_begin(op, std::span<const double>(&value, 1));
  }
  double reduce_end() { return collective_end().at(0); }

  // Barrier = zero-width collective.
  void barrier_begin() { collective_begin(ReduceOp::kSum, {}); }
  void barrier_end() { (void)collective_end(); }

  const RankCounters& counters() const;

 private:
  Engine* engine_;
  int rank_;
};

// Thrown on violations of the phase/message protocol.
class ProtocolError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// Engine: owns rank state (clocks, mailboxes, collectives) and executes
// phases. Concrete subclasses decide sequential vs threaded execution.
class Engine {
 public:
  Engine(int ranks, MachineModel model);
  virtual ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  int size() const { return ranks_; }
  const MachineModel& model() const { return model_; }

  // Runs `body` once per rank as the next phase.
  virtual void run_phase(const std::function<void(Comm&)>& body) = 0;

  // Inspection (valid between phases).
  double clock(int rank) const;
  const RankCounters& counters(int rank) const;
  int current_phase() const { return phase_; }

  // Maximum clock across ranks — the virtual makespan so far.
  double makespan() const;

  // Aligns every rank's clock to the maximum (used by harnesses to model a
  // hard synchronisation point without paying collective cost).
  void align_clocks();

  // Attaches a protocol checker (sim/checker.hpp) observing every
  // communication event; nullptr detaches. Attach before the first phase —
  // traffic already in flight makes the trace unmatchable. Hooks only fire
  // when compiled with PCMD_CHECKER_ENABLED (the PCMD_CHECKER CMake
  // option); the checker's lifetime is the caller's problem.
  void set_checker(ProtocolChecker* checker);
  ProtocolChecker* checker() const { return checker_; }

  // Attaches an observability sink (sim/trace_sink.hpp) that receives every
  // compute/send/recv/collective event with virtual timestamps; nullptr
  // detaches. Orthogonal to the protocol checker: the checker verifies, the
  // sink records. Detached cost is one branch per event. The sink's
  // lifetime is the caller's problem.
  void set_trace_sink(TraceSink* sink);
  TraceSink* trace_sink() const { return sink_; }

 protected:
  // Subclasses call this at the top of run_phase, after ++phase_.
  void notify_phase_begin();

  int phase_ = 0;

 private:
  friend class Comm;

  struct CollectiveSlot {
    ReduceOp op = ReduceOp::kSum;
    std::size_t width = 0;
    int contributions = 0;
    int last_begin_phase = -1;
    double max_clock = 0.0;
    // Per-rank contributions, combined in rank order at the first end() so
    // floating-point rounding is independent of execution order.
    std::vector<double> per_rank;  // width * ranks, rank-major
    std::vector<bool> present;     // which ranks contributed
    std::vector<double> combined;  // length == width, filled lazily
    bool have_combined = false;
  };

  struct RankState {
    double clock = 0.0;
    RankCounters counters;
    Mailbox mailbox;
    std::size_t begin_seq = 0;  // collectives begun by this rank
    std::size_t end_seq = 0;    // collectives completed by this rank
  };

  void do_send(int src, int dst, int tag, Buffer payload);
  Buffer do_recv(int rank, int src, int tag);
  std::optional<Buffer> do_try_recv(int rank, int src, int tag);
  void do_collective_begin(int rank, ReduceOp op,
                           std::span<const double> values);
  std::vector<double> do_collective_end(int rank);

  int ranks_;
  MachineModel model_;
  HopModel hop_model_;
  ProtocolChecker* checker_ = nullptr;
  TraceSink* sink_ = nullptr;
  std::vector<std::unique_ptr<RankState>> states_;
  std::vector<CollectiveSlot> collectives_;
  mutable std::mutex collective_mutex_;
};

// Deterministic sequential engine: ranks run one after another per phase.
class SeqEngine final : public Engine {
 public:
  SeqEngine(int ranks, MachineModel model = MachineModel::t3e());
  void run_phase(const std::function<void(Comm&)>& body) override;
};

// Thread-backed engine: one persistent worker per rank, phases separated by
// barriers. Produces results identical to SeqEngine.
class ThreadEngine final : public Engine {
 public:
  ThreadEngine(int ranks, MachineModel model = MachineModel::t3e());
  ~ThreadEngine() override;
  void run_phase(const std::function<void(Comm&)>& body) override;

 private:
  struct Pool;
  std::unique_ptr<Pool> pool_;
};

}  // namespace pcmd::sim
