// The SPMD communication interface and the engine that executes SPMD
// programs on the virtual parallel machine.
//
// Programming model (BSP phases):
//   * A program is driven as a sequence of *phases*. In each phase the same
//     callable runs once per rank (sequentially in SeqEngine, concurrently in
//     ThreadEngine).
//   * `send` is asynchronous and may target any rank.
//   * `recv` may only consume messages sent in an *earlier* phase. Receiving
//     a message that was never sent (or was sent in the same phase) is a
//     protocol error and throws — this guarantee is what makes the
//     sequential and threaded engines bitwise-identical.
//   * Collectives are split-phase: `collective_begin` in one phase,
//     `collective_end` in a later phase.
//
// Virtual time: each rank carries a clock. `advance` charges modelled compute
// time; `recv` forwards the clock to the message arrival time if the message
// is "still in flight"; collectives synchronise clocks to the latest
// participant plus a tree-reduction cost. MPI_Wtime in the paper's programs
// maps to Comm::clock().
#pragma once

#include "sim/cost_model.hpp"
#include "sim/mailbox.hpp"
#include "sim/message.hpp"
#include "sim/topology.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

// Compile-time switch for the protocol-checker hooks (the PCMD_CHECKER CMake
// option, a PUBLIC define on pcmd_sim; default on).
#ifndef PCMD_CHECKER_ENABLED
#define PCMD_CHECKER_ENABLED 1
#endif

// Shared-state access stamp for the checker's happens-before detector
// (sim/checker.hpp). Engines mark each cross-rank touch point:
//
//   PCMD_HB_ACCESS(comm, "column", col, /*is_write=*/true, "dlb");
//
// declaring "this rank now reads/writes logical object {kind, index}".
// A touch is legal only if every conflicting touch by another rank is
// separated from it by a message or collective path; the checker reports
// the rest as unordered-access violations. Compiles to nothing when the
// checker hooks are compiled out; costs a null-pointer branch when no
// checker is attached. `kind` and `site` must be string literals (the
// checker keeps the pointers).
#if PCMD_CHECKER_ENABLED
#define PCMD_HB_ACCESS(comm, kind, index, is_write, site)               \
  (comm).hb_access(                                                     \
      ::pcmd::sim::HbObject((kind), static_cast<std::int64_t>(index)),  \
      (is_write), (site))
#else
#define PCMD_HB_ACCESS(comm, kind, index, is_write, site) ((void)0)
#endif

namespace pcmd::sim {

class FaultInjector;
class ProtocolChecker;
class TraceSink;

// Identifies one piece of logically-shared protocol state for the
// happens-before detector: a small family name ("column", "halo", ...) plus
// an instance index. `kind` must point at storage that outlives the checker
// (in practice: a string literal).
struct HbObject {
  HbObject(const char* kind_in, std::int64_t index_in)
      : kind(kind_in), index(index_in) {}
  const char* kind;
  std::int64_t index;
};

// Reduction operators for collectives.
enum class ReduceOp { kSum, kMax, kMin };

// Per-rank accounting, inspectable after (or during) a run.
struct RankCounters {
  double compute_seconds = 0.0;    // charged via advance()
  double comm_wait_seconds = 0.0;  // time the clock jumped forward in recv()
  double collective_seconds = 0.0; // cost charged by collective_end()
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t recv_timeouts = 0;  // recv_deadline calls that timed out
};

class Engine;

// Lightweight per-rank handle passed to phase bodies.
class Comm {
 public:
  Comm(Engine* engine, int rank) : engine_(engine), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const;

  // Charges modelled compute time to this rank's clock.
  void advance(double seconds);

  // Current virtual time on this rank.
  double clock() const;

  // Asynchronous point-to-point send; the payload is charged to the sender's
  // counters and arrives at `clock() + message_time(bytes, hops)`. When a
  // FaultInjector is attached the message may be dropped, corrupted,
  // delayed or slowed per the fault plan.
  void send(int dst, int tag, Buffer payload);

  // What the fault layer did to one transmission attempt. In a real machine
  // the sender learns this through the ack/timeout protocol; the virtual
  // machine hands it back directly so the reliable channel can charge the
  // equivalent virtual backoff time without modelling ack messages.
  struct SendOutcome {
    bool dropped = false;    // never entered the destination mailbox
    bool corrupted = false;  // delivered, but with a flipped payload byte
    double arrival = 0.0;    // virtual arrival time (meaningless if dropped)
    bool delivered_intact() const { return !dropped && !corrupted; }
  };

  // Send as one numbered attempt of a reliable transmission: the fault
  // decision is keyed on `attempt` (so a retry can succeed where the first
  // copy failed) and the message leaves `extra_delay` virtual seconds after
  // now (the retransmission backoff). Used by sim::ReliableChannel; plain
  // send(dst, tag, payload) is attempt 0 with no delay.
  SendOutcome send_attempt(int dst, int tag, Buffer payload,
                           std::uint32_t attempt, double extra_delay = 0.0);

  // Receives the message sent by `src` with `tag` in an earlier phase.
  //
  // recv NEVER blocks, on either engine: a message that was never sent (or
  // was sent in the current phase) throws ProtocolError immediately, with
  // rank/phase provenance, whether or not a ProtocolChecker is attached.
  // This replaces the deadlock a real MPI rank would sit in — use
  // recv_deadline when "no message" is an expected outcome (a crashed
  // peer) rather than a protocol bug.
  Buffer recv(int src, int tag);

  // Non-throwing variant.
  std::optional<Buffer> try_recv(int src, int tag);

  // Receive with a virtual-time deadline: delivers like recv when a message
  // is visible; otherwise models waiting `timeout` seconds for a message
  // that never came — the clock advances by `timeout`, the rank's
  // recv_timeouts counter increments, and nullopt is returned. This is the
  // crash-detection primitive: under BSP visibility a message absent now is
  // absent forever, so the timeout maps the "is the peer dead?" question
  // into virtual time deterministically.
  std::optional<Buffer> recv_deadline(int src, int tag, double timeout);

  // True if recv(src, tag) would succeed.
  bool has_message(int src, int tag) const;

  // Sources with a visible message of `tag`, sorted (deterministic).
  std::vector<int> sources_with(int tag) const;

  // Split-phase collective over all ranks. Every rank must call begin with
  // the same op and width in the same phase, then end in a later phase.
  //
  // `slot` is the logical contribution index (default: this rank). Layers
  // that separate logical roles from physical ranks (sim::Membership) pass
  // the role id so the floating-point combine order — and therefore the
  // reduced value, bit for bit — depends only on the logical configuration,
  // not on which physical rank happens to host each role. Two ranks passing
  // the same slot in one collective is a protocol error.
  void collective_begin(ReduceOp op, std::span<const double> values,
                        int slot = -1);
  std::vector<double> collective_end();

  // Convenience wrappers for the common scalar cases.
  void reduce_begin(ReduceOp op, double value) {
    collective_begin(op, std::span<const double>(&value, 1));
  }
  double reduce_end() { return collective_end().at(0); }

  // Barrier = zero-width collective.
  void barrier_begin() { collective_begin(ReduceOp::kSum, {}); }
  void barrier_end() { (void)collective_end(); }

  // Routes a PCMD_HB_ACCESS stamp to the attached checker's happens-before
  // detector (no-op with no checker, or with the hooks compiled out).
  // Prefer the macro: it disappears entirely under PCMD_CHECKER_ENABLED=0.
  void hb_access(HbObject object, bool is_write, const char* site);

  const RankCounters& counters() const;

 private:
  Engine* engine_;
  int rank_;
};

// Thrown on violations of the phase/message protocol.
class ProtocolError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// Thrown when a payload fails its integrity check — the bytes arrived but
// were corrupted in flight. Distinct from the truncation/shape errors plain
// ProtocolError reports, so callers can tell "bad link" from "bad code".
class ChecksumError : public ProtocolError {
 public:
  using ProtocolError::ProtocolError;
};

// Engine: owns rank state (clocks, mailboxes, collectives) and executes
// phases. Concrete subclasses decide sequential vs threaded execution.
class Engine {
 public:
  Engine(int ranks, MachineModel model);
  virtual ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  int size() const { return ranks_; }
  const MachineModel& model() const { return model_; }

  // Runs `body` once per rank as the next phase.
  virtual void run_phase(const std::function<void(Comm&)>& body) = 0;

  // Inspection (valid between phases).
  double clock(int rank) const;
  const RankCounters& counters(int rank) const;
  int current_phase() const { return phase_; }

  // Maximum clock across ranks — the virtual makespan so far.
  double makespan() const;

  // Aligns every rank's clock to the maximum (used by harnesses to model a
  // hard synchronisation point without paying collective cost).
  void align_clocks();

  // Overwrites every rank's clock, one value per rank. Clock skew carries
  // across phases, so a suspended run resumed on a fresh engine (implicitly
  // aligned at zero) would observe different per-step makespans; restoring
  // the captured clocks makes virtual time itself resume-invariant. Call
  // only between phases (from the driving thread).
  void restore_clocks(const std::vector<double>& clocks);

  // Attaches a protocol checker (sim/checker.hpp) observing every
  // communication event; nullptr detaches. Attach before the first phase —
  // traffic already in flight makes the trace unmatchable. Hooks only fire
  // when compiled with PCMD_CHECKER_ENABLED (the PCMD_CHECKER CMake
  // option); the checker's lifetime is the caller's problem.
  void set_checker(ProtocolChecker* checker);
  ProtocolChecker* checker() const { return checker_; }

  // Attaches an observability sink (sim/trace_sink.hpp) that receives every
  // compute/send/recv/collective event with virtual timestamps; nullptr
  // detaches. Orthogonal to the protocol checker: the checker verifies, the
  // sink records. Detached cost is one branch per event. The sink's
  // lifetime is the caller's problem.
  void set_trace_sink(TraceSink* sink);
  TraceSink* trace_sink() const { return sink_; }

  // Attaches a fault injector (sim/fault.hpp) applying its FaultPlan to
  // every send/advance; nullptr detaches. Attach before the first phase.
  // The injector's lifetime is the caller's problem. Note the strict
  // ProtocolChecker assumes lossless delivery — do not attach both a
  // checker and a lossy fault plan.
  void set_fault_injector(FaultInjector* faults);
  FaultInjector* fault_injector() const { return faults_; }

  // Crash status. A crash scheduled at virtual time T takes effect at the
  // first phase boundary where the rank's clock has reached T: the rank's
  // phase body is simply never run again (its clock freezes, messages to it
  // rot unread, messages from it stop). Aliveness is recomputed only in
  // notify_phase_begin — on the driving thread, between phases — so phase
  // bodies may read it without synchronisation and every rank observes the
  // same view for a whole phase.
  bool alive(int rank) const { return alive_[static_cast<std::size_t>(rank)] != 0; }
  int alive_count() const;

  // Parked ranks idle at barriers: they are exempt from collective
  // completeness (a collective does not wait for them), modelling spare PEs
  // blocked in a recv that membership has not yet woken. Their phase bodies
  // still run — the program is expected to return immediately for a parked
  // rank. Unparking fast-forwards the rank's collective cursors and clock to
  // the running ranks' position so its next collective_begin joins the
  // current slot. Call only between phases (from the driving thread).
  void set_parked(int rank, bool parked);
  bool parked(int rank) const {
    return parked_[static_cast<std::size_t>(rank)] != 0;
  }

  // Administratively marks a rank dead, exactly as if a planned crash had
  // fired at the current phase boundary: its body never runs again and
  // collectives stop waiting for it. Used by the watchdog to excise a rank
  // that keeps producing corrupt state. Call only between phases.
  void declare_dead(int rank);

 protected:
  // Subclasses call this at the top of run_phase, after ++phase_.
  void notify_phase_begin();

  int phase_ = 0;

 private:
  friend class Comm;

  struct CollectiveSlot {
    ReduceOp op = ReduceOp::kSum;
    std::size_t width = 0;
    int contributions = 0;
    int last_begin_phase = -1;
    double max_clock = 0.0;
    // Contributions keyed by logical slot, combined in slot order at the
    // first end() so floating-point rounding is independent of execution
    // order AND of the role→rank placement. Presence is tracked per physical
    // rank separately, because completeness ("has everyone begun?") is a
    // question about ranks while the combine is a question about slots.
    std::vector<double> per_slot;    // width * ranks, slot-major
    std::vector<bool> present_slot;  // which logical slots contributed
    std::vector<bool> present_rank;  // which physical ranks contributed
    std::vector<double> combined;    // length == width, filled lazily
    bool have_combined = false;
  };

  struct RankState {
    double clock = 0.0;
    RankCounters counters;
    Mailbox mailbox;
    std::size_t begin_seq = 0;  // collectives begun by this rank
    std::size_t end_seq = 0;    // collectives completed by this rank
  };

  Comm::SendOutcome do_send(int src, int dst, int tag, Buffer payload,
                            std::uint32_t attempt, double extra_delay);
  Buffer do_recv(int rank, int src, int tag);
  std::optional<Buffer> do_try_recv(int rank, int src, int tag);
  std::optional<Buffer> do_recv_deadline(int rank, int src, int tag,
                                         double timeout);
  void do_collective_begin(int rank, ReduceOp op,
                           std::span<const double> values, int slot);
  std::vector<double> do_collective_end(int rank);
  void do_hb_access(int rank, HbObject object, bool is_write,
                    const char* site);

  int ranks_;
  MachineModel model_;
  HopModel hop_model_;
  ProtocolChecker* checker_ = nullptr;
  TraceSink* sink_ = nullptr;
  FaultInjector* faults_ = nullptr;
  // 1 = alive. Written only between phases (notify_phase_begin); read freely
  // by phase bodies. Once 0, stays 0.
  std::vector<char> alive_;
  // 1 = parked (idling spare). Written only between phases (set_parked);
  // read freely by phase bodies.
  std::vector<char> parked_;
  std::vector<std::unique_ptr<RankState>> states_;
  std::vector<CollectiveSlot> collectives_;
  mutable std::mutex collective_mutex_;
};

// Deterministic sequential engine: ranks run one after another per phase.
class SeqEngine final : public Engine {
 public:
  SeqEngine(int ranks, MachineModel model = MachineModel::t3e());
  void run_phase(const std::function<void(Comm&)>& body) override;
};

// Thread-backed engine: one persistent worker per rank, phases separated by
// barriers. Produces results identical to SeqEngine.
class ThreadEngine final : public Engine {
 public:
  ThreadEngine(int ranks, MachineModel model = MachineModel::t3e());
  ~ThreadEngine() override;
  void run_phase(const std::function<void(Comm&)>& body) override;

 private:
  struct Pool;
  std::unique_ptr<Pool> pool_;
};

}  // namespace pcmd::sim
