#include "sim/cost_model.hpp"

#include <cmath>
#include <limits>

namespace pcmd::sim {

namespace {
int collective_rounds(int ranks) {
  int rounds = 0;
  int span = 1;
  while (span < ranks) {
    span *= 2;
    ++rounds;
  }
  return rounds;
}
}  // namespace

double MachineModel::message_time(std::uint64_t bytes, int hops) const {
  return msg_latency + hop_latency * hops +
         static_cast<double>(bytes) / bandwidth;
}

double MachineModel::collective_time(int ranks, std::uint64_t bytes) const {
  const int rounds = collective_rounds(ranks);
  return rounds * (msg_latency + collective_overhead +
                   static_cast<double>(bytes) / bandwidth);
}

MachineModel MachineModel::t3e() { return MachineModel{}; }

MachineModel MachineModel::ideal_network() {
  MachineModel m;
  m.name = "ideal-network";
  m.msg_latency = 0.0;
  m.hop_latency = 0.0;
  m.bandwidth = std::numeric_limits<double>::infinity();
  m.collective_overhead = 0.0;
  return m;
}

MachineModel MachineModel::beowulf() {
  MachineModel m;
  m.name = "beowulf";
  m.pair_cost = 2.0e-7;       // ~10x faster CPU than the EV5
  m.particle_cost = 2.5e-7;
  m.cell_cost = 0.6e-7;
  m.msg_latency = 6.0e-5;     // ethernet-class latency
  m.hop_latency = 0.0;        // switched, flat
  m.bandwidth = 1.0e8;
  m.collective_overhead = 2.0e-5;
  return m;
}

}  // namespace pcmd::sim
