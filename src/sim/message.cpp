#include "sim/message.hpp"

// Header-only logic; this translation unit exists so the target always has a
// symbol and header hygiene is compile-checked.
namespace pcmd::sim {}
