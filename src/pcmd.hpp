// Umbrella header: the whole public API of the pcmd library.
//
//   #include "pcmd.hpp"
//
// pulls in every module. Fine for applications and examples; library code
// should include the specific headers it uses.
#pragma once

// util — math, PBC, RNG, statistics, fitting, output helpers
#include "util/cli.hpp"
#include "util/least_squares.hpp"
#include "util/log.hpp"
#include "util/pbc.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/vec3.hpp"

// sim — the virtual parallel machine
#include "sim/comm.hpp"
#include "sim/cost_model.hpp"
#include "sim/mailbox.hpp"
#include "sim/message.hpp"
#include "sim/topology.hpp"
#include "sim/trace.hpp"

// md — Lennard-Jones molecular dynamics
#include "md/cell_grid.hpp"
#include "md/integrator.hpp"
#include "md/lj.hpp"
#include "md/neighbor_list.hpp"
#include "md/observables.hpp"
#include "md/particle.hpp"
#include "md/rdf.hpp"
#include "md/serial_md.hpp"
#include "md/thermostat.hpp"
#include "md/units.hpp"
#include "md/xyz.hpp"

// workload — initial conditions and analysis
#include "workload/cluster.hpp"
#include "workload/gas.hpp"
#include "workload/lattice.hpp"
#include "workload/paper_system.hpp"
#include "workload/synthetic.hpp"

// core — permanent-cell dynamic load balancing (the paper's contribution)
#include "core/column_map.hpp"
#include "core/dlb_protocol.hpp"
#include "core/invariant.hpp"
#include "core/pillar_layout.hpp"

// ddm — domain decomposition and the SPMD engines
#include "ddm/balancer.hpp"
#include "ddm/comm_volume.hpp"
#include "ddm/engine_config.hpp"
#include "ddm/parallel_md.hpp"
#include "ddm/slab_md.hpp"
#include "ddm/wire.hpp"

// theory — Section 4 bounds and effective-range analysis
#include "theory/boundary.hpp"
#include "theory/bounds.hpp"
#include "theory/concentration.hpp"
#include "theory/effective_range.hpp"
#include "theory/synthetic_balance.hpp"

// run — declarative run descriptions for harnesses
#include "run/run_spec.hpp"
