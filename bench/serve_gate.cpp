// The committed scheduler-throughput gate.
//
// Measures the end-to-end job rate of the serve::Scheduler — spec parse,
// queueing, a full small ParallelMd run per job inside the containment
// boundary, result-store persistence — and writes one owned key:
//
//   serve_jobs_per_sec   clean jobs drained per wall-clock second
//
// Jobs are uniform small clean runs (distinct seeds, so the idempotency
// cache never short-circuits the work); each sample is a fresh store and
// scheduler, and the best of --repeats samples is kept, same one-sided
// noise argument as perf_gate.
//
// The store is file-backed in FlushMode::kOnCompact — the production serve
// configuration — so the metric includes durable persistence (one sorted
// rewrite at shutdown) without the retired per-put whole-file rewrite that
// used to make persistence O(N^2) in the store size.
//
//   ./serve_gate [--jobs 48] [--workers 4] [--repeats 3]
//                [--store BENCH_serve_store.jsonl]
//                [--out BENCH_serve.json] [--merge 0|1]
//                [--check BASELINE.json] [--tolerance 0.15]
//
// --check compares against the committed BENCH_perf.json, which this gate
// shares with perf_gate; only serve_jobs_per_sec is owned (and checked)
// here. Regenerate the shared baseline with --out BENCH_perf.json --merge 1.

#include "scoreboard.hpp"

#include "serve/scheduler.hpp"
#include "util/cli.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace pcmd;

namespace {

double run_queue(const std::vector<std::string>& specs, int workers,
                 const std::string& store_path) {
  std::remove(store_path.c_str());  // each sample starts cold
  serve::ResultStore store(store_path, serve::FlushMode::kOnCompact);
  serve::SchedulerConfig config;
  config.workers = workers;
  const auto start = std::chrono::steady_clock::now();
  {
    serve::Scheduler scheduler(config, store);
    for (const auto& text : specs) scheduler.submit(text);
    scheduler.drain();
  }  // destructor stops the pool and compacts the store file — timed
  const auto stop = std::chrono::steady_clock::now();
  if (store.size() != specs.size()) {
    std::fprintf(stderr, "serve_gate: %zu of %zu jobs reached the store\n",
                 store.size(), specs.size());
    std::exit(1);
  }
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int jobs = static_cast<int>(cli.get_int("jobs", 48));
  const int workers = static_cast<int>(cli.get_int("workers", 4));
  const int repeats = static_cast<int>(cli.get_int("repeats", 3));
  const std::string store_path = cli.get("store", "BENCH_serve_store.jsonl");
  const std::string out_path = cli.get("out", "BENCH_serve.json");
  const bool merge = cli.get_bool("merge", false);
  const auto check_path = cli.get_optional("check");
  const double tolerance = cli.get_double("tolerance", 0.15);
  const auto unknown = cli.unqueried_flags();
  if (!unknown.empty()) {
    std::fprintf(stderr,
                 "serve_gate: unknown flag --%s (accepted: --jobs N, "
                 "--workers W, --repeats R, --store PATH, --out PATH, "
                 "--merge 0|1, --check PATH, --tolerance F)\n",
                 unknown.front().c_str());
    return 2;
  }

  std::vector<std::string> specs;
  specs.reserve(jobs);
  for (int i = 0; i < jobs; ++i) {
    specs.push_back("--pe 9 --m 2 --density 0.2 --steps 8 --seed " +
                    std::to_string(5000 + i));
  }

  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    best = std::min(best, run_queue(specs, workers, store_path));
    std::printf("repeat %d/%d: %d jobs in %.3fs\n", r + 1, repeats, jobs,
                best);
  }
  std::remove(store_path.c_str());

  bench::Scoreboard board;
  board["serve_jobs_per_sec"] = static_cast<double>(jobs) / best;
  std::printf("\nscoreboard (best of %d):\n", repeats);
  for (const auto& [key, value] : board) {
    std::printf("  %-20s %14.1f\n", key.c_str(), value);
  }
  bench::write_scoreboard(out_path, board, merge);
  std::printf("wrote %s\n", out_path.c_str());

  if (check_path) {
    const auto baseline = bench::read_scoreboard(*check_path);
    std::printf("\nchecking against %s (tolerance %.0f%%):\n",
                check_path->c_str(), 100.0 * tolerance);
    const int failures = bench::check_against(board, baseline, tolerance);
    if (failures > 0) {
      std::printf("serve gate FAILED: %d metric(s) regressed beyond %.0f%%\n",
                  failures, 100.0 * tolerance);
      return 1;
    }
    std::puts("serve gate passed.");
  }
  return 0;
}
