// Figure 5 reproduction: execution time per time step as a function of the
// time step, DDM vs DLB-DDM.
//
// Paper setup: 36 PEs of a Cray T3E; (a) m = 4, N = 59319, C = 13824;
// (b) m = 2, N = 8000, C = 1728; thousands of time steps of a supercooled
// gas (T* = 0.722, rho* = 0.256). DDM's time per step climbs as particles
// concentrate; DLB-DDM stays nearly flat until the DLB limit.
//
// Default here: the same physics scaled to 9 virtual PEs, rho* = 0.384
// (denser than the paper's 0.256 so condensation — and with it the DDM
// slowdown — develops within the scaled step budget), and fewer steps so
// the bench finishes in ~2 minutes on one core. `--full` switches to the
// paper's 36-PE, rho* = 0.256, 10^4-step configuration (a long run).
//
//   ./fig5_exec_time [--steps 1500] [--interval 125] [--density 0.384]
//                    [--seed 1] [--full] [--trace out/fig5]
//                    [--faults seed=7,drop=0.05] [--checkpoint-every 100]
//
// --trace PATH writes, per case and per run, a Chrome trace-event JSON
// (PATH.m4.ddm.json, ...; open in Perfetto) and the per-step metrics CSV
// (PATH.m4.ddm.csv, ...).
//
// --faults PLAN injects deterministic message faults (sim::FaultPlan
// grammar) and routes all traffic through the reliable channel; the run's
// physics is unchanged, only clocks and retry counters move. The fault and
// retry counters land in the metrics CSV. --checkpoint-every N serializes a
// full checkpoint every N steps and reports its size.

#include "obs/chrome_trace.hpp"
#include "obs/collector.hpp"
#include "obs/metrics.hpp"
#include "run/run_spec.hpp"
#include "theory/effective_range.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <iostream>
#include <optional>

using namespace pcmd;

namespace {

struct CaseResult {
  std::vector<obs::StepMetrics> ddm;  // one row per step
  std::vector<obs::StepMetrics> dlb;
};

void export_run(const std::string& base, obs::TraceCollector& collector,
                std::span<const obs::StepMetrics> rows) {
  if (!obs::write_chrome_trace_file(base + ".json", collector)) {
    std::fprintf(stderr, "trace: failed to write %s.json\n", base.c_str());
  }
  if (!obs::write_csv_file(base + ".csv", rows)) {
    std::fprintf(stderr, "trace: failed to write %s.csv\n", base.c_str());
  }
  collector.clear();
}

// Runs the case's DDM and DLB-DDM trajectories. `suffix` distinguishes the
// per-case trace sinks (PATH.m4.ddm.json, ...).
CaseResult run_case(const run::RunSpec& spec, const std::string& suffix) {
  auto config = spec.trajectory_config();

  obs::TraceCollector collector;
  if (spec.trace_path) config.trace = &collector;
  const auto trace_base =
      spec.trace_path ? std::optional(*spec.trace_path + suffix)
                      : std::nullopt;

  auto report_ft = [&](const char* label,
                       const theory::MdTrajectoryResult& run) {
    if (!config.faults.empty()) {
      std::printf("  [%s] retransmissions %llu, recv timeouts %llu\n", label,
                  static_cast<unsigned long long>(run.retransmissions_total),
                  static_cast<unsigned long long>(run.recv_timeouts_total));
    }
    if (spec.checkpoint_every > 0) {
      std::printf("  [%s] %d checkpoints, last %zu bytes\n", label,
                  run.checkpoints_taken, run.last_checkpoint.size());
    }
  };

  CaseResult result;
  config.dlb_enabled = false;
  {
    const auto run = run_md_trajectory(config);
    result.ddm = run.metrics;
    report_ft("ddm", run);
  }
  if (trace_base) export_run(*trace_base + ".ddm", collector, result.ddm);
  config.dlb_enabled = true;
  {
    const auto run = run_md_trajectory(config);
    result.dlb = run.metrics;
    report_ft("dlb", run);
  }
  if (trace_base) export_run(*trace_base + ".dlb", collector, result.dlb);
  return result;
}

double window_mean(const std::vector<obs::StepMetrics>& rows, int lo, int hi) {
  double sum = 0.0;
  for (int i = lo; i < hi; ++i) sum += rows[i].t_step;
  return sum / std::max(1, hi - lo);
}

void print_case(const char* title, const CaseResult& result, int interval) {
  std::printf("%s\n", title);
  Table table({"steps", "DDM time/step [s]", "DLB-DDM time/step [s]",
               "DDM/DLB"});
  const int steps = static_cast<int>(result.ddm.size());
  for (int hi = interval; hi <= steps; hi += interval) {
    const double a = window_mean(result.ddm, hi - interval, hi);
    const double b = window_mean(result.dlb, hi - interval, hi);
    table.add_row({std::to_string(hi), Table::num(a, 4), Table::num(b, 4),
                   Table::num(b > 0 ? a / b : 0.0, 3)});
  }
  table.print(std::cout);
  double total_a = 0.0, total_b = 0.0;
  for (const auto& row : result.ddm) total_a += row.t_step;
  for (const auto& row : result.dlb) total_b += row.t_step;
  std::printf("whole run: DDM %.2f s, DLB-DDM %.2f s (speedup %.2fx)\n\n",
              total_a, total_b, total_b > 0 ? total_a / total_b : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool full = cli.get_bool("full", false);
  run::RunSpec defaults;
  defaults.system.pe_count = full ? 36 : 9;
  defaults.system.density = full ? 0.256 : 0.384;
  defaults.system.seed = 1;
  defaults.steps = full ? 10000 : 1500;
  const auto base = run::parse_run_spec(cli, defaults);
  const int steps = static_cast<int>(base.steps);
  const int interval =
      static_cast<int>(cli.get_int("interval", std::max(1, steps / 12)));
  run::require_all_flags_consumed(cli, "fig5_exec_time");

  std::printf("== Figure 5: time per step, DDM vs DLB-DDM (%d virtual PEs, "
              "T3E cost model, T*=0.722, rho*=%.3f) ==\n\n",
              base.system.pe_count, base.system.density);

  {
    const auto result = run_case(run::RunSpec(base).with_m(4), ".m4");
    print_case("(a) m = 4  — movable fraction 9/16, strong DLB capability",
               result, interval);
  }
  {
    // m = 2 steps are ~7x cheaper; run a longer horizon so the condensation
    // (and the DDM slowdown) is equally visible.
    const auto result = run_case(
        run::RunSpec(base).with_m(2).with_steps(full ? steps : 2 * steps),
        ".m2");
    print_case("(b) m = 2  — movable fraction 1/4, weak DLB capability",
               result, full ? interval : 2 * interval);
  }
  std::puts("paper shape: DDM's per-step time climbs as the gas condenses; "
            "DLB-DDM stays nearly flat, more clearly at m = 4 than m = 2.");
  return 0;
}
