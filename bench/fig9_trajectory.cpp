// Figure 9 reproduction: the trajectory of one MD simulation in
// (n, C0/C) space.
//
// As the supercooled gas condenses, both the empty-cell ratio C0/C and the
// concentration factor n climb from their balanced starting point; the paper
// marks the experimental boundary point where Fmax - Fmin begins to grow.
// This bench prints the trajectory samples and, when found, the boundary.
//
//   ./fig9_trajectory [--steps 1500] [--interval 100] [--density 0.384]
//                     [--m 3] [--seed 2] [--full]

#include "theory/bounds.hpp"
#include "theory/effective_range.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <iostream>

using namespace pcmd;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool full = cli.get_bool("full", false);
  const int steps = static_cast<int>(cli.get_int("steps", full ? 8000 : 2500));
  const int interval =
      static_cast<int>(cli.get_int("interval", std::max(1, steps / 15)));

  theory::MdTrajectoryConfig config;
  config.spec.pe_count = full ? 36 : 9;
  config.spec.m = static_cast<int>(cli.get_int("m", 3));
  config.spec.density = cli.get_double("density", 0.384);
  config.spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2));
  config.steps = steps;
  config.dlb_enabled = true;

  std::printf("== Figure 9: (n, C0/C) trajectory of one DLB-DDM run "
              "(%d PEs, m=%d, rho*=%.3f) ==\n\n",
              config.spec.pe_count, config.spec.m, config.spec.density);

  const auto result = run_md_trajectory(config);

  Table table({"step", "n", "C0/C", "f(m,n) bound", "(Fmax-Fmin)/Fave"});
  for (int hi = interval; hi <= steps; hi += interval) {
    double n = 0, c0c = 0, spread = 0;
    for (int i = hi - interval; i < hi; ++i) {
      n += result.concentration[i].n;
      c0c += result.concentration[i].c0_ratio;
      spread += result.f_avg[i] > 0
                    ? (result.f_max[i] - result.f_min[i]) / result.f_avg[i]
                    : 0.0;
    }
    const double inv = 1.0 / interval;
    n *= inv;
    c0c *= inv;
    spread *= inv;
    table.add_row({std::to_string(hi), Table::num(n, 4), Table::num(c0c, 4),
                   Table::num(theory::upper_bound(config.spec.m, n), 4),
                   Table::num(spread, 3)});
  }
  table.print(std::cout);

  const auto point = theory::extract_boundary_point(
      result.f_max, result.f_min, result.f_avg, result.concentration,
      config.spec.m);
  if (point.found) {
    std::printf("\nexperimental boundary point: step %lld, n = %.3f, "
                "C0/C = %.4f (theory bound f(m,n) = %.4f, E/T = %.2f)\n",
                static_cast<long long>(point.step), point.n, point.c0_ratio,
                theory::upper_bound(config.spec.m, point.n),
                point.ratio_to_theory);
  } else {
    std::puts("\nno boundary point inside this run: the trajectory stayed "
              "within DLB's effective range (increase --steps or --density "
              "to push it over)");
  }
  std::puts("paper shape: the trajectory starts near (1, 0) and climbs as "
            "condensation proceeds; the boundary appears where the force "
            "spread starts growing.");
  return 0;
}
