// Table 1 reproduction: the ratio E/T of the experimental boundary to the
// theoretical upper bound of DLB, for m = 2/3/4 on 16/36/64 PEs.
//
// Paper claims to check in shape:
//   * E/T < 1 everywhere (experiments never beat the bound),
//   * E/T barely depends on the number of PEs for fixed m,
//   * E/T grows with m (the experimental boundary approaches the bound).
//
//   ./table1_ratio [--steps 400] [--reps 2] [--full]

#include "theory/effective_range.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <iostream>

using namespace pcmd;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool full = cli.get_bool("full", false);
  // m = 4 holds out longest; the horizon must reach past its DLB limit or
  // its cell reports "-" (no boundary found = balancing never broke).
  const int steps = static_cast<int>(cli.get_int("steps", full ? 800 : 550));
  const int reps = static_cast<int>(cli.get_int("reps", full ? 3 : 2));

  std::puts("== Table 1: ratio E/T of experimental boundary to theoretical "
            "upper bound ==\n");

  const std::vector<int> pe_sides = {4, 6, 8};  // 16 / 36 / 64 PEs
  const std::vector<int> ms = {2, 3, 4};

  Table table({"m", "E/T 16PEs", "E/T 36PEs", "E/T 64PEs"});
  std::vector<RunningStats> per_pe(pe_sides.size());

  for (const int m : ms) {
    std::vector<std::string> row = {std::to_string(m)};
    for (std::size_t k = 0; k < pe_sides.size(); ++k) {
      theory::EffectiveRangeConfig config;
      config.pe_side = pe_sides[k];
      config.m = m;
      config.steps = steps;
      config.reps = reps;
      if (!full) {
        config.densities = {0.128, 0.256};  // --full sweeps all four
      }
      const auto result = theory::synthetic_effective_range(config);
      if (result.mean_ratio_to_theory > 0.0) {
        row.push_back(Table::num(result.mean_ratio_to_theory, 3));
        per_pe[k].add(result.mean_ratio_to_theory);
      } else {
        row.push_back("-");
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::puts("\npaper shape: the three values in one row are close to each "
            "other (E/T does not depend strongly on the PE count), all are "
            "below 1, and the paper reports the ratio growing with m.");
  for (std::size_t k = 0; k < pe_sides.size(); ++k) {
    if (per_pe[k].count() > 0) {
      std::printf("P = %2d PEs: mean E/T %.3f (stddev %.3f)\n",
                  pe_sides[k] * pe_sides[k], per_pe[k].mean(),
                  per_pe[k].stddev());
    }
  }
  return 0;
}
