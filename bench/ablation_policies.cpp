// Ablation A2/A3: DLB design knobs this repo exposes beyond the paper.
//
//  * column selection policy (nearest-to-receiver / most- / least-loaded /
//    lowest-index),
//  * strict PE_fast-only targeting (the literal paper protocol) vs the
//    fallback-to-helpable extension,
//  * hysteresis (minimum relative time gap before a transfer),
//  * decision interval (every step vs every k steps).
//
// Each variant runs the same concentrating workload on the occupancy-driven
// balance simulator; reported are the mean and final normalized force-time
// spread and the number of column transfers (churn).
//
//   ./ablation_policies [--steps 400] [--m 4] [--pe-side 3]

#include "theory/synthetic_balance.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cmath>
#include <cstdio>
#include <iostream>

using namespace pcmd;

namespace {

struct Outcome {
  double mean_spread = 0.0;
  double late_spread = 0.0;
  int transfers = 0;
};

Outcome evaluate(const theory::SyntheticBalanceConfig& config) {
  const auto result = theory::run_synthetic_balance(config);
  Outcome outcome;
  const std::size_t count = result.records.size();
  const std::size_t late_from = count - count / 4;
  double late_sum = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& r = result.records[i];
    const double spread =
        r.f_avg > 0 ? (r.f_max - r.f_min) / r.f_avg : 0.0;
    outcome.mean_spread += spread;
    if (i >= late_from) late_sum += spread;
    outcome.transfers += r.transfers;
  }
  outcome.mean_spread /= static_cast<double>(count);
  outcome.late_spread = late_sum / static_cast<double>(count - late_from);
  return outcome;
}

theory::SyntheticBalanceConfig base_config(const Cli& cli) {
  theory::SyntheticBalanceConfig config;
  config.pe_side = static_cast<int>(cli.get_int("pe-side", 3));
  config.m = static_cast<int>(cli.get_int("m", 4));
  config.steps = static_cast<int>(cli.get_int("steps", 400));
  const int k = config.pe_side * config.m;
  config.workload.particles =
      static_cast<std::int64_t>(0.256 * std::pow(k * config.cutoff, 3));
  config.workload.seed = 5;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);

  std::puts("== Ablation A2: selection policy x targeting mode ==\n");
  {
    Table table({"policy", "targeting", "mean spread", "late spread",
                 "transfers"});
    struct PolicyCase {
      core::SelectionPolicy policy;
      const char* name;
    };
    const PolicyCase policies[] = {
        {core::SelectionPolicy::kNearestToReceiver, "nearest-to-receiver"},
        {core::SelectionPolicy::kMostLoaded, "most-loaded"},
        {core::SelectionPolicy::kLeastLoaded, "least-loaded"},
        {core::SelectionPolicy::kLowestIndex, "lowest-index"},
    };
    for (const auto& p : policies) {
      for (const bool fallback : {false, true}) {
        auto config = base_config(cli);
        config.dlb.policy = p.policy;
        config.dlb.fallback_to_helpable = fallback;
        const auto outcome = evaluate(config);
        table.add_row({p.name, fallback ? "fallback" : "strict(paper)",
                       Table::num(outcome.mean_spread, 3),
                       Table::num(outcome.late_spread, 3),
                       std::to_string(outcome.transfers)});
      }
    }
    table.print(std::cout);
  }

  std::puts("\n== Ablation A2a: overshoot prevention ==\n");
  {
    Table table({"avoid overshoot", "mean spread", "late spread",
                 "transfers"});
    for (const bool avoid : {true, false}) {
      auto config = base_config(cli);
      config.dlb.fallback_to_helpable = true;
      config.dlb.avoid_overshoot = avoid;
      const auto outcome = evaluate(config);
      table.add_row({avoid ? "on (default)" : "off (literal paper)",
                     Table::num(outcome.mean_spread, 3),
                     Table::num(outcome.late_spread, 3),
                     std::to_string(outcome.transfers)});
    }
    table.print(std::cout);
    std::puts("(off reproduces the literal protocol: any positive gap moves "
              "a whole column, which churns on balanced load; hardware "
              "timing noise hides this on the paper's T3E)");
  }

  std::puts("\n== Ablation A2b: hysteresis (minimum relative gap) ==\n");
  {
    Table table({"min gap", "mean spread", "late spread", "transfers"});
    for (const double gap : {0.0, 0.02, 0.05, 0.1, 0.25, 0.5}) {
      auto config = base_config(cli);
      config.dlb.fallback_to_helpable = true;
      config.dlb.min_relative_gap = gap;
      const auto outcome = evaluate(config);
      table.add_row({Table::num(gap, 3), Table::num(outcome.mean_spread, 3),
                     Table::num(outcome.late_spread, 3),
                     std::to_string(outcome.transfers)});
    }
    table.print(std::cout);
  }

  std::puts("\n== Ablation A3: decision interval (paper: every step) ==\n");
  {
    Table table({"interval", "mean spread", "late spread", "transfers"});
    for (const int interval : {1, 2, 5, 10, 25, 100}) {
      auto config = base_config(cli);
      config.dlb.fallback_to_helpable = true;
      config.dlb.interval = interval;
      const auto outcome = evaluate(config);
      table.add_row({std::to_string(interval),
                     Table::num(outcome.mean_spread, 3),
                     Table::num(outcome.late_spread, 3),
                     std::to_string(outcome.transfers)});
    }
    table.print(std::cout);
  }

  std::puts("\nno-DLB baseline:");
  {
    auto config = base_config(cli);
    config.dlb_enabled = false;
    const auto outcome = evaluate(config);
    std::printf("  mean spread %.3f, late spread %.3f, transfers %d\n",
                outcome.mean_spread, outcome.late_spread, outcome.transfers);
  }
  return 0;
}
