// Ablation A2/A3 plus the balancer bake-off.
//
// A2/A3 sweep the DLB design knobs this repo exposes beyond the paper:
//
//  * column selection policy (nearest-to-receiver / most- / least-loaded /
//    lowest-index),
//  * strict PE_fast-only targeting (the literal paper protocol) vs the
//    fallback-to-helpable extension,
//  * hysteresis (minimum relative time gap before a transfer),
//  * decision interval (every step vs every k steps).
//
// Each variant runs the same concentrating workload on the occupancy-driven
// balance simulator; reported are the mean and final normalized force-time
// spread and the number of column transfers (churn).
//
// The bake-off then runs every registered ddm::Balancer policy head-to-head
// on real ParallelMd across three workload shapes — gas (uniform), cluster
// (two dense slabs) and droplet (dense core, sparse halo) — and reports the
// virtual-time makespan, the mean and late-quarter fractional load
// imbalance, and the movement churn, optionally as a JSON table.
//
//   ./ablation_policies [--steps 400] [--m 4] [--pe-side 3]
//                       [--bake-steps 60] [--bake-only 0|1] [--json PATH]

#include "ddm/balancer.hpp"
#include "ddm/parallel_md.hpp"
#include "theory/synthetic_balance.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/gas.hpp"
#include "workload/lattice.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

using namespace pcmd;

namespace {

struct Outcome {
  double mean_spread = 0.0;
  double late_spread = 0.0;
  int transfers = 0;
};

Outcome evaluate(const theory::SyntheticBalanceConfig& config) {
  const auto result = theory::run_synthetic_balance(config);
  Outcome outcome;
  const std::size_t count = result.records.size();
  const std::size_t late_from = count - count / 4;
  double late_sum = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& r = result.records[i];
    const double spread =
        r.f_avg > 0 ? (r.f_max - r.f_min) / r.f_avg : 0.0;
    outcome.mean_spread += spread;
    if (i >= late_from) late_sum += spread;
    outcome.transfers += r.transfers;
  }
  outcome.mean_spread /= static_cast<double>(count);
  outcome.late_spread = late_sum / static_cast<double>(count - late_from);
  return outcome;
}

theory::SyntheticBalanceConfig base_config(const Cli& cli) {
  theory::SyntheticBalanceConfig config;
  config.pe_side = static_cast<int>(cli.get_int("pe-side", 3));
  config.m = static_cast<int>(cli.get_int("m", 4));
  config.steps = static_cast<int>(cli.get_int("steps", 400));
  const int k = config.pe_side * config.m;
  config.workload.particles =
      static_cast<std::int64_t>(0.256 * std::pow(k * config.cutoff, 3));
  config.workload.seed = 5;
  return config;
}

// ---- balancer bake-off on real ParallelMd --------------------------------

// Cold (zero-velocity) simple-cubic lattice filling [origin, origin+extent)
// with n particles, centred so no particle touches a region face. Overlap-
// free by construction — scripted concentrating workloads place particles
// without a minimum separation, which blows up real LJ forces.
md::ParticleVector bake_lattice(std::int64_t n, const Vec3& origin,
                                const Vec3& extent, std::int64_t first_id) {
  const double volume = extent.x * extent.y * extent.z;
  const double spacing = std::cbrt(volume / static_cast<double>(n));
  const int nx = std::max(1, static_cast<int>(extent.x / spacing));
  const int ny = std::max(1, static_cast<int>(extent.y / spacing));
  const int nz =
      static_cast<int>(std::ceil(static_cast<double>(n) / (nx * ny)));
  md::ParticleVector out;
  out.reserve(static_cast<std::size_t>(n));
  std::int64_t id = first_id;
  for (int z = 0; z < nz && id - first_id < n; ++z) {
    for (int y = 0; y < ny && id - first_id < n; ++y) {
      for (int x = 0; x < nx && id - first_id < n; ++x) {
        md::Particle p;
        p.id = id++;
        p.position = {origin.x + (x + 0.5) * extent.x / nx,
                      origin.y + (y + 0.5) * extent.y / ny,
                      origin.z + (z + 0.5) * extent.z / nz};
        out.push_back(p);
      }
    }
  }
  return out;
}

// The three workload shapes of the head-to-head: uniform gas (nothing to
// balance), two dense slabs (a sustained gradient along x), and a dense
// droplet core with a sparse halo (the paper's concentration scenario).
md::ParticleVector bake_workload(const std::string& shape, const Box& box) {
  const double lx = box.length.x;
  if (shape == "gas") {
    pcmd::Rng rng(33);
    workload::GasConfig gas;
    gas.temperature = 0.722;
    return workload::random_gas(400, box, gas, rng);
  }
  if (shape == "cluster") {
    auto all = bake_lattice(240, {0.0, 0.0, 0.0},
                            {0.27 * lx, box.length.y, box.length.z}, 0);
    const auto second =
        bake_lattice(120, {0.5 * lx, 0.0, 0.0},
                     {0.27 * lx, box.length.y, box.length.z}, 240);
    const auto sparse =
        bake_lattice(40, {0.84 * lx, 0.0, 0.0},
                     {0.14 * lx, box.length.y, box.length.z}, 360);
    all.insert(all.end(), second.begin(), second.end());
    all.insert(all.end(), sparse.begin(), sparse.end());
    return all;
  }
  if (shape == "droplet") {
    const double core = lx / 3.0;
    auto all = bake_lattice(140, {core, core, core}, {core, core, core}, 0);
    const auto left =
        bake_lattice(130, {0.0, 0.0, 0.0},
                     {0.27 * lx, box.length.y, box.length.z}, 140);
    const auto right =
        bake_lattice(130, {0.73 * lx, 0.0, 0.0},
                     {0.27 * lx, box.length.y, box.length.z}, 270);
    all.insert(all.end(), left.begin(), left.end());
    all.insert(all.end(), right.begin(), right.end());
    return all;
  }
  throw std::invalid_argument("unknown bake-off workload: " + shape);
}

struct BakeResult {
  std::string policy;
  std::string workload;
  int steps = 0;
  double makespan = 0.0;        // sum of per-step virtual seconds
  double mean_imbalance = 0.0;  // fractional load imbalance, whole run
  double late_imbalance = 0.0;  // last quarter (post-transient quality)
  int transfers = 0;
  int cells_moved = 0;
};

BakeResult run_bakeoff(ddm::BalancerKind kind, const std::string& shape,
                       int steps) {
  // pe_side 3, m 2: K = 6, box edge 15 — big enough to concentrate, small
  // enough for a CI smoke run.
  ddm::ParallelMdConfig config;
  config.pe_side = 3;
  config.m = 2;
  config.cutoff = 2.5;
  config.dt = 0.004;
  config.dlb_enabled = true;
  config.dlb.fallback_to_helpable = true;
  config.balancer.kind = kind;
  const Box box = Box::cubic(config.pe_side * config.m * config.cutoff);

  sim::SeqEngine engine(config.pe_side * config.pe_side);
  ddm::ParallelMd md(engine, box, bake_workload(shape, box), config);

  BakeResult result;
  result.policy = ddm::balancer_name(kind);
  result.workload = shape;
  result.steps = steps;
  const int late_from = steps - steps / 4;
  double late_sum = 0.0;
  for (int i = 0; i < steps; ++i) {
    const auto stats = md.step();
    result.makespan += stats.t_step;
    result.mean_imbalance += stats.imbalance;
    if (i >= late_from) late_sum += stats.imbalance;
    result.transfers += stats.transfers;
    result.cells_moved += stats.cells_moved;
  }
  result.mean_imbalance /= static_cast<double>(steps);
  result.late_imbalance = late_sum / static_cast<double>(steps - late_from);
  return result;
}

void write_bakeoff_json(const std::string& path,
                        const std::vector<BakeResult>& results) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for the JSON table\n", path.c_str());
    return;
  }
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "  {\"policy\": \"%s\", \"workload\": \"%s\", "
                  "\"steps\": %d, \"makespan\": %.17g, "
                  "\"mean_imbalance\": %.17g, \"late_imbalance\": %.17g, "
                  "\"transfers\": %d, \"cells_moved\": %d}%s",
                  r.policy.c_str(), r.workload.c_str(), r.steps, r.makespan,
                  r.mean_imbalance, r.late_imbalance, r.transfers,
                  r.cells_moved, i + 1 < results.size() ? ",\n" : "\n");
    os << line;
  }
  os << "]\n";
  std::printf("bake-off JSON written to %s\n", path.c_str());
}

void run_bakeoff_study(const Cli& cli) {
  const int steps = static_cast<int>(cli.get_int("bake-steps", 60));
  std::puts("\n== Bake-off: balancer policy x workload (real ParallelMd) ==\n");
  Table table({"policy", "workload", "makespan", "mean imb", "late imb",
               "transfers", "cells moved"});
  std::vector<BakeResult> results;
  for (const auto kind : ddm::all_balancer_kinds()) {
    for (const char* shape : {"gas", "cluster", "droplet"}) {
      const BakeResult r = run_bakeoff(kind, shape, steps);
      table.add_row({r.policy, r.workload, Table::num(r.makespan, 4),
                     Table::num(r.mean_imbalance, 3),
                     Table::num(r.late_imbalance, 3),
                     std::to_string(r.transfers),
                     std::to_string(r.cells_moved)});
      results.push_back(r);
    }
  }
  table.print(std::cout);
  std::puts("(makespan: summed virtual step seconds; imb: fractional load "
            "imbalance Fmax/Fave - 1; late imb: last quarter of the run)");
  if (const auto json = cli.get_optional("json")) {
    write_bakeoff_json(*json, results);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.get_bool("bake-only", false)) {
    run_bakeoff_study(cli);
    return 0;
  }

  std::puts("== Ablation A2: selection policy x targeting mode ==\n");
  {
    Table table({"policy", "targeting", "mean spread", "late spread",
                 "transfers"});
    struct PolicyCase {
      core::SelectionPolicy policy;
      const char* name;
    };
    const PolicyCase policies[] = {
        {core::SelectionPolicy::kNearestToReceiver, "nearest-to-receiver"},
        {core::SelectionPolicy::kMostLoaded, "most-loaded"},
        {core::SelectionPolicy::kLeastLoaded, "least-loaded"},
        {core::SelectionPolicy::kLowestIndex, "lowest-index"},
    };
    for (const auto& p : policies) {
      for (const bool fallback : {false, true}) {
        auto config = base_config(cli);
        config.dlb.policy = p.policy;
        config.dlb.fallback_to_helpable = fallback;
        const auto outcome = evaluate(config);
        table.add_row({p.name, fallback ? "fallback" : "strict(paper)",
                       Table::num(outcome.mean_spread, 3),
                       Table::num(outcome.late_spread, 3),
                       std::to_string(outcome.transfers)});
      }
    }
    table.print(std::cout);
  }

  std::puts("\n== Ablation A2a: overshoot prevention ==\n");
  {
    Table table({"avoid overshoot", "mean spread", "late spread",
                 "transfers"});
    for (const bool avoid : {true, false}) {
      auto config = base_config(cli);
      config.dlb.fallback_to_helpable = true;
      config.dlb.avoid_overshoot = avoid;
      const auto outcome = evaluate(config);
      table.add_row({avoid ? "on (default)" : "off (literal paper)",
                     Table::num(outcome.mean_spread, 3),
                     Table::num(outcome.late_spread, 3),
                     std::to_string(outcome.transfers)});
    }
    table.print(std::cout);
    std::puts("(off reproduces the literal protocol: any positive gap moves "
              "a whole column, which churns on balanced load; hardware "
              "timing noise hides this on the paper's T3E)");
  }

  std::puts("\n== Ablation A2b: hysteresis (minimum relative gap) ==\n");
  {
    Table table({"min gap", "mean spread", "late spread", "transfers"});
    for (const double gap : {0.0, 0.02, 0.05, 0.1, 0.25, 0.5}) {
      auto config = base_config(cli);
      config.dlb.fallback_to_helpable = true;
      config.dlb.min_relative_gap = gap;
      const auto outcome = evaluate(config);
      table.add_row({Table::num(gap, 3), Table::num(outcome.mean_spread, 3),
                     Table::num(outcome.late_spread, 3),
                     std::to_string(outcome.transfers)});
    }
    table.print(std::cout);
  }

  std::puts("\n== Ablation A3: decision interval (paper: every step) ==\n");
  {
    Table table({"interval", "mean spread", "late spread", "transfers"});
    for (const int interval : {1, 2, 5, 10, 25, 100}) {
      auto config = base_config(cli);
      config.dlb.fallback_to_helpable = true;
      config.dlb.interval = interval;
      const auto outcome = evaluate(config);
      table.add_row({std::to_string(interval),
                     Table::num(outcome.mean_spread, 3),
                     Table::num(outcome.late_spread, 3),
                     std::to_string(outcome.transfers)});
    }
    table.print(std::cout);
  }

  std::puts("\nno-DLB baseline:");
  {
    auto config = base_config(cli);
    config.dlb_enabled = false;
    const auto outcome = evaluate(config);
    std::printf("  mean spread %.3f, late spread %.3f, transfers %d\n",
                outcome.mean_spread, outcome.late_spread, outcome.transfers);
  }

  run_bakeoff_study(cli);
  return 0;
}
