// Ablation: permanent-cell DLB (square pillar) vs the prior-work baseline —
// 1-D slab decomposition with dynamic boundary shifting (Brugé & Fornili,
// Kohring; the paper's refs [4][5]).
//
// The paper's argument (Section 1): 1-D methods are hard to extend to 3-D —
// the slab halo is a full K x K layer per side and does not shrink with P,
// and balancing moves entire layers, a much coarser granularity than the
// pillar's columns. This bench runs both engines on the same concentrating
// supercooled gas and on the same PE budget, and prints time-per-step
// windows plus communication volume.
//
//   ./ablation_baseline_1d [--steps 900] [--density 0.384] [--pe 9]

#include "ddm/parallel_md.hpp"
#include "ddm/slab_md.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/paper_system.hpp"

#include <cstdio>
#include <iostream>

using namespace pcmd;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int steps = static_cast<int>(cli.get_int("steps", 600));
  const double density = cli.get_double("density", 0.384);
  const int pe = static_cast<int>(cli.get_int("pe", 9));

  // m = 4 gives K = 12 cell layers: enough for a 9-PE slab ring (the slab
  // needs at least one layer per PE — its granularity problem in a
  // nutshell) and a strong pillar-DLB configuration.
  workload::PaperSystemSpec spec;
  spec.pe_count = pe;
  spec.m = 4;
  spec.density = density;
  spec.seed = 5;
  Rng rng(spec.seed);
  const auto initial = workload::make_paper_system(spec, rng);

  std::printf("== 1-D baseline vs permanent-cell DLB: %d PEs, N=%zu, "
              "rho*=%.3f, %d steps ==\n\n",
              pe, initial.size(), density, steps);

  // Square pillar with DLB.
  sim::SeqEngine pillar_engine(pe);
  ddm::ParallelMdConfig pillar_config;
  pillar_config.pe_side = spec.pe_side();
  pillar_config.m = spec.m;
  pillar_config.dt = spec.dt;
  pillar_config.rescale_temperature = spec.temperature;
  pillar_config.dlb_enabled = true;
  ddm::ParallelMd pillar(pillar_engine, spec.box(), initial, pillar_config);

  // Slab ring, static and shifting.
  auto make_slab = [&](bool shift) {
    ddm::SlabMdConfig config;
    config.pe_count = pe;
    config.cells_per_axis = spec.cells_per_axis();
    config.dt = spec.dt;
    config.rescale_temperature = spec.temperature;
    config.shift_enabled = shift;
    return config;
  };
  sim::SeqEngine slab_engine(pe);
  ddm::SlabMd slab(slab_engine, spec.box(), initial, make_slab(true));
  sim::SeqEngine static_engine(pe);
  ddm::SlabMd slab_static(static_engine, spec.box(), initial,
                          make_slab(false));

  const int interval = std::max(1, steps / 9);
  Table table({"steps", "pillar+DLB Tt [s]", "slab+shift Tt [s]",
               "slab static Tt [s]"});
  double acc_p = 0, acc_s = 0, acc_t = 0;
  for (int i = 1; i <= steps; ++i) {
    acc_p += pillar.step().t_step;
    acc_s += slab.step().t_step;
    acc_t += slab_static.step().t_step;
    if (i % interval == 0) {
      table.add_row({std::to_string(i), Table::num(acc_p / interval, 4),
                     Table::num(acc_s / interval, 4),
                     Table::num(acc_t / interval, 4)});
      acc_p = acc_s = acc_t = 0;
    }
  }
  table.print(std::cout);

  Table comm({"engine", "virtual total [s]", "messages", "bytes"});
  auto add = [&](const char* name, const sim::Engine& engine) {
    const auto report = sim::machine_report(engine);
    comm.add_row({name, Table::num(report.makespan, 4),
                  std::to_string(report.total_messages),
                  std::to_string(report.total_bytes)});
  };
  add("pillar + DLB", pillar_engine);
  add("slab + shift", slab_engine);
  add("slab static", static_engine);
  std::printf("\n");
  comm.print(std::cout);

  std::puts("\nreading: at equal PE count the slab pays a far larger halo "
            "(its K x K faces do not shrink with P) and balances at whole-"
            "layer granularity; the pillar's column-level DLB tracks the "
            "condensation more closely — the reason the paper builds on "
            "square pillars.");
  return 0;
}
