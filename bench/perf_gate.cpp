// The committed performance gate.
//
// Measures host throughput of the three execution tiers and writes the
// scoreboard to BENCH_perf.json:
//
//   serial_md_pps      md::SerialMd step loop, particles*steps per second
//   seq_engine_pps     ddm::ParallelMd, chaos-free fig5 config, SeqEngine
//   thread_engine_pps  ddm::SlabMd on ThreadEngine with 8 workers
//   fig5_wall_seconds  wall time of the seq fig5 run (lower is better)
//
// Every sample is a full fresh run; each metric keeps the best of --repeats
// samples, because wall time on a shared box is one-sided noise: a run can
// only be slowed down, so the fastest sample is the closest estimate of the
// machine's capability.
//
//   ./perf_gate [--repeats 3] [--out BENCH_perf.json]
//               [--check BASELINE.json] [--tolerance 0.15]
//               [shared run flags — see run/run_spec.hpp]
//
// --check compares the fresh measurement against a committed baseline and
// exits non-zero when any throughput metric drops more than --tolerance
// (relative), or the fig5 wall time grows by more than it — the CI perf job
// runs exactly this against the BENCH_perf.json in the repository root.
// That file also carries keys owned by other gates (serve_gate's
// serve_jobs_per_sec); only the four keys above are checked here, and
// --merge 1 preserves the others when regenerating the baseline.

#include "scoreboard.hpp"

#include "ddm/parallel_md.hpp"
#include "ddm/slab_md.hpp"
#include "md/serial_md.hpp"
#include "run/run_spec.hpp"
#include "sim/comm.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/gas.hpp"
#include "workload/paper_system.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace pcmd;

namespace {

double time_seconds(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

// ---- the three measured tiers ---------------------------------------------

// SerialMd: the pure force/integrate hot path, no virtual machine.
double run_serial(std::int64_t n, std::int64_t steps) {
  const double volume = static_cast<double>(n) / 0.256;
  const Box box = Box::cubic(std::cbrt(volume));
  Rng rng(42);
  workload::GasConfig gas;
  gas.min_separation = 0.8;
  auto initial = workload::random_gas(n, box, gas, rng);
  md::SerialMdConfig config;
  config.dt = 0.004;
  md::SerialMd sim(box, initial, config);
  return time_seconds([&] {
    for (std::int64_t i = 0; i < steps; ++i) sim.step();
  });
}

// ParallelMd in the chaos-free fig5 configuration on the chosen engine.
double run_pillar(const run::RunSpec& spec, sim::Engine& engine) {
  Rng rng(spec.system.seed);
  const auto initial = workload::make_paper_system(spec.system, rng);
  ddm::ParallelMd md(ddm::EngineConfig{.engine = &engine,
                                       .box = spec.system.box(),
                                       .initial = &initial},
                     spec.parallel_config());
  return time_seconds([&] {
    for (std::int64_t i = 0; i < spec.steps; ++i) md.step();
  });
}

// SlabMd on 8 ranks: the "8 workers" ThreadEngine configuration.
double run_slab8(sim::Engine& engine, std::int64_t n, std::int64_t steps) {
  const Box box = Box::cubic(40.0);
  Rng rng(7);
  workload::GasConfig gas;
  auto initial = workload::random_gas(n, box, gas, rng);
  ddm::SlabMdConfig config;
  config.pe_count = 8;
  config.cells_per_axis = 16;
  config.dt = 0.004;
  config.shift_enabled = true;
  ddm::SlabMd md(ddm::EngineConfig{.engine = &engine, .box = box,
                                   .initial = &initial},
                 config);
  return time_seconds([&] {
    for (std::int64_t i = 0; i < steps; ++i) md.step();
  });
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  run::RunSpec defaults;
  defaults.system.pe_count = 9;
  defaults.system.m = 4;
  defaults.system.density = 0.384;
  defaults.system.seed = 1;
  defaults.steps = 60;
  defaults.dlb_enabled = true;
  const auto spec = run::parse_run_spec(cli, defaults);
  const int repeats =
      static_cast<int>(cli.get_int("repeats", 3));
  const std::string out_path = cli.get("out", "BENCH_perf.json");
  const auto check_path = cli.get_optional("check");
  const double tolerance = cli.get_double("tolerance", 0.15);
  const bool merge = cli.get_bool("merge", false);
  run::require_all_flags_consumed(cli, "perf_gate");

  const std::int64_t serial_n = 4000;
  const std::int64_t serial_steps = 25;
  const std::int64_t slab_n = 4000;
  const std::int64_t slab_steps = 40;
  const auto pillar_n = static_cast<std::int64_t>([&] {
    Rng rng(spec.system.seed);
    return workload::make_paper_system(spec.system, rng).size();
  }());

  double best_serial = 1e300, best_seq = 1e300, best_thr = 1e300;
  for (int r = 0; r < repeats; ++r) {
    best_serial = std::min(best_serial, run_serial(serial_n, serial_steps));
    {
      sim::SeqEngine engine(spec.system.pe_count);
      best_seq = std::min(best_seq, run_pillar(spec, engine));
    }
    {
      sim::ThreadEngine engine(8);
      best_thr = std::min(best_thr, run_slab8(engine, slab_n, slab_steps));
    }
    std::printf("repeat %d/%d: serial %.3fs  seq %.3fs  thread %.3fs\n",
                r + 1, repeats, best_serial, best_seq, best_thr);
  }

  bench::Scoreboard board;
  board["serial_md_pps"] =
      static_cast<double>(serial_n * serial_steps) / best_serial;
  board["seq_engine_pps"] =
      static_cast<double>(pillar_n * spec.steps) / best_seq;
  board["thread_engine_pps"] =
      static_cast<double>(slab_n * slab_steps) / best_thr;
  board["fig5_wall_seconds"] = best_seq;

  std::printf("\nscoreboard (best of %d):\n", repeats);
  for (const auto& [key, value] : board) {
    std::printf("  %-20s %14.1f\n", key.c_str(), value);
  }
  bench::write_scoreboard(out_path, board, merge);
  std::printf("wrote %s\n", out_path.c_str());

  if (check_path) {
    const auto baseline = bench::read_scoreboard(*check_path);
    std::printf("\nchecking against %s (tolerance %.0f%%):\n",
                check_path->c_str(), 100.0 * tolerance);
    const int failures = bench::check_against(board, baseline, tolerance);
    if (failures > 0) {
      std::printf("perf gate FAILED: %d metric(s) regressed beyond %.0f%%\n",
                  failures, 100.0 * tolerance);
      return 1;
    }
    std::puts("perf gate passed.");
  }
  return 0;
}
