// Shared flat-JSON scoreboard I/O and regression checking for the
// committed performance gates (perf_gate, serve_gate).
//
// Several gate binaries share one committed baseline file (BENCH_perf.json)
// but each *owns* only the keys it measures. The ownership contract lives
// in check_against(): it iterates the keys of the CURRENT board — a
// baseline key some other gate owns is ignored, a current key missing from
// the baseline fails loudly (the baseline needs regenerating), and an owned
// key that regressed beyond the tolerance fails. write_scoreboard() with
// merge=true folds the tool's keys over an existing file, so regenerating
// the shared baseline is one `--out BENCH_perf.json --merge 1` run per
// gate, in any order.
//
// Header-only on purpose: bench binaries are standalone executables and the
// format is small enough that a library target would be ceremony.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pcmd::bench {

using Scoreboard = std::map<std::string, double>;

// Strict scanner for the flat {"key": number, ...} format — no dependency,
// and anything else (nesting, arrays, trailing garbage) throws naming the
// offending byte.
inline Scoreboard read_scoreboard(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("scoreboard: cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  Scoreboard board;
  std::size_t pos = 0;
  const auto skip_ws = [&] {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  };
  const auto bad = [&](const std::string& what) {
    throw std::runtime_error("scoreboard: " + path + ": " + what +
                             " at byte " + std::to_string(pos) +
                             " (expected flat {\"key\": number, ...})");
  };
  skip_ws();
  if (pos >= text.size() || text[pos] != '{') bad("missing '{'");
  ++pos;
  skip_ws();
  while (pos < text.size() && text[pos] != '}') {
    if (text[pos] != '"') bad("missing key quote");
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) bad("unterminated key");
    const std::string key = text.substr(pos + 1, end - pos - 1);
    pos = end + 1;
    skip_ws();
    if (pos >= text.size() || text[pos] != ':') bad("missing ':'");
    ++pos;
    skip_ws();
    char* num_end = nullptr;
    const double value = std::strtod(text.c_str() + pos, &num_end);
    if (num_end == text.c_str() + pos) bad("malformed number");
    pos = static_cast<std::size_t>(num_end - text.c_str());
    board[key] = value;
    skip_ws();
    if (pos < text.size() && text[pos] == ',') {
      ++pos;
      skip_ws();
    }
  }
  if (pos >= text.size() || text[pos] != '}') bad("missing '}'");
  ++pos;
  skip_ws();
  if (pos != text.size()) bad("trailing bytes");
  return board;
}

// With merge=true, keys already in `path` that `board` does not own are
// carried over unchanged (how multiple gates share one baseline file).
inline void write_scoreboard(const std::string& path, Scoreboard board,
                             bool merge = false) {
  if (merge) {
    std::ifstream probe(path);
    if (probe) {
      Scoreboard merged = read_scoreboard(path);
      for (const auto& [key, value] : board) merged[key] = value;
      board = std::move(merged);
    }
  }
  std::ofstream out(path);
  out << "{\n";
  std::size_t i = 0;
  for (const auto& [key, value] : board) {
    out << "  \"" << key << "\": " << value
        << (++i < board.size() ? "," : "") << "\n";
  }
  out << "}\n";
  if (!out) {
    throw std::runtime_error("scoreboard: failed to write " + path);
  }
}

// Relative comparison of the keys THIS run owns: throughputs must not drop,
// "_seconds" metrics must not grow, by more than `tolerance`. Returns the
// failure count (0 = gate passes).
inline int check_against(const Scoreboard& current, const Scoreboard& baseline,
                         double tolerance) {
  int failures = 0;
  for (const auto& [key, now] : current) {
    const auto it = baseline.find(key);
    if (it == baseline.end()) {
      std::printf("FAIL %-20s missing from the baseline (regenerate it)\n",
                  key.c_str());
      ++failures;
      continue;
    }
    const double base = it->second;
    const bool lower_is_better =
        key.size() >= 8 && key.compare(key.size() - 8, 8, "_seconds") == 0;
    const double ratio = lower_is_better
                             ? (base > 0 ? now / base : 1.0)
                             : (now > 0 ? base / now : 1e30);
    const bool ok = ratio <= 1.0 + tolerance;
    std::printf("%s %-20s baseline %12.1f  now %12.1f  (%+.1f%%)\n",
                ok ? "  ok" : "FAIL", key.c_str(), base, now,
                100.0 * (now / base - 1.0));
    if (!ok) ++failures;
  }
  return failures;
}

}  // namespace pcmd::bench
