// Figure 10 reproduction: theoretical upper bounds f(m, n) of C0/C together
// with experimental boundary points and the least-squares experimental
// boundary, for m = 2 (a), m = 3 (b) and m = 4 (c).
//
// The paper runs ten MD repetitions per density on 36 T3E PEs. Here the
// default sweep uses the occupancy-driven balance simulator (identical DLB
// protocol, scripted concentration — see DESIGN.md) with a reduced PE grid,
// and `--full-md` validates one point per density with the real SPMD MD
// engine.
//
//   ./fig10_effective_range [--pe-side 6] [--steps 500] [--reps 3]
//                           [--full-md]

#include "theory/bounds.hpp"
#include "theory/effective_range.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <iostream>

using namespace pcmd;

namespace {

void print_panel(const theory::EffectiveRangeResult& result) {
  std::printf("(m = %d, %d virtual PEs)\n", result.m,
              result.pe_side * result.pe_side);

  // Theoretical upper bound at a grid of n values.
  Table bound({"n", "theory f(m,n)", "experimental boundary fit"});
  for (const double n : {1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 7.0}) {
    std::string fit = "-";
    if (result.experimental_boundary) {
      fit = Table::num(result.experimental_boundary->evaluate(n), 4);
    }
    bound.add_row({Table::num(n, 3),
                   Table::num(theory::upper_bound(result.m, n), 4), fit});
  }
  bound.print(std::cout);

  Table points({"rho*", "points", "boundary step", "n", "C0/C", "err(C0/C)",
                "E/T"});
  for (const auto& d : result.densities) {
    if (!d.mean.found) {
      points.add_row({Table::num(d.density, 3), "0", "-", "-", "-", "-", "-"});
      continue;
    }
    points.add_row({Table::num(d.density, 3),
                    std::to_string(d.points.size()),
                    std::to_string(d.mean.step), Table::num(d.mean.n, 3),
                    Table::num(d.mean.c0_ratio, 4),
                    Table::num(d.c0_stddev, 4),
                    Table::num(d.mean.ratio_to_theory, 3)});
  }
  points.print(std::cout);
  std::printf("mean E/T over found points: %.3f\n\n",
              result.mean_ratio_to_theory);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int pe_side = static_cast<int>(cli.get_int("pe-side", 6));
  const int steps = static_cast<int>(cli.get_int("steps", 500));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const bool full_md = cli.get_bool("full-md", false);

  std::printf("== Figure 10: theoretical upper bounds vs experimental "
              "boundary points (%d virtual PEs) ==\n\n",
              pe_side * pe_side);

  for (const int m : {2, 3, 4}) {
    theory::EffectiveRangeConfig config;
    config.pe_side = pe_side;
    config.m = m;
    config.steps = steps;
    config.reps = reps;
    print_panel(theory::synthetic_effective_range(config));
  }

  if (full_md) {
    std::puts("== full-MD validation (one run per density, m = 2, 9 PEs) ==");
    Table table({"rho*", "boundary step", "n", "C0/C", "E/T"});
    for (const double density : {0.128, 0.256, 0.384, 0.512}) {
      theory::MdTrajectoryConfig config;
      config.spec.pe_count = 9;
      config.spec.m = 2;
      config.spec.density = density;
      config.spec.seed = 11;
      config.steps = static_cast<int>(cli.get_int("md-steps", 4000));
      config.dlb_enabled = true;
      const auto run = run_md_trajectory(config);
      const auto point = theory::extract_boundary_point(
          run.f_max, run.f_min, run.f_avg, run.concentration, config.spec.m);
      if (point.found) {
        table.add_row({Table::num(density, 3), std::to_string(point.step),
                       Table::num(point.n, 3), Table::num(point.c0_ratio, 4),
                       Table::num(point.ratio_to_theory, 3)});
      } else {
        table.add_row({Table::num(density, 3), "-", "-", "-", "-"});
      }
    }
    table.print(std::cout);
  }

  std::puts("paper shape: every experimental boundary point lies below the "
            "theoretical upper bound; the fitted experimental boundary "
            "tracks the bound's 1/(an+b) shape from below.");
  return 0;
}
