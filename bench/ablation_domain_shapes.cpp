// Ablation A1: domain shape (plane / square pillar / cube).
//
// Quantifies the paper's Section 2.2 argument (ref [8]) that the square
// pillar is the right shape for mid-size MD on mid-size machines: the plane
// has only 2 neighbours but a huge halo volume; the cube minimises volume
// but needs 26 neighbour messages; the pillar sits in between. The winner
// depends on the machine's latency/bandwidth balance, shown for the T3E-like
// model and a commodity-cluster model.
//
//   ./ablation_domain_shapes [--cells 48]

#include "ddm/comm_volume.hpp"
#include "sim/cost_model.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <optional>

using namespace pcmd;

namespace {

std::optional<ddm::CommProfile> try_profile(ddm::DomainShape shape, int cells,
                                            int pe) {
  try {
    return ddm::comm_profile(shape, cells, pe);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int cells = static_cast<int>(cli.get_int("cells", 48));

  std::printf("== Ablation A1: domain shapes at K = %d cells/axis "
              "(C = %d) ==\n\n",
              cells, cells * cells * cells);

  const auto t3e = sim::MachineModel::t3e();
  const auto beowulf = sim::MachineModel::beowulf();
  // Halo payload: ~4 particles per cell (rho* = 0.256), 32-byte records.
  const double bytes_per_cell = 4.0 * 32.0;

  Table table({"PEs", "shape", "nbrs", "halo cells", "surface",
               "T3E comm [ms]", "cluster comm [ms]"});
  for (const int pe : {4, 8, 16, 27, 36, 64, 144, 216}) {
    for (const auto shape :
         {ddm::DomainShape::kPlane, ddm::DomainShape::kSquarePillar,
          ddm::DomainShape::kCube}) {
      const auto profile = try_profile(shape, cells, pe);
      if (!profile) continue;
      const double t3e_ms =
          1e3 * profile->comm_seconds(t3e.msg_latency,
                                      bytes_per_cell / t3e.bandwidth);
      const double bw_ms =
          1e3 * profile->comm_seconds(beowulf.msg_latency,
                                      bytes_per_cell / beowulf.bandwidth);
      table.add_row({std::to_string(pe), ddm::to_string(shape),
                     std::to_string(profile->neighbor_count),
                     Table::num(profile->halo_cells, 5),
                     Table::num(profile->surface_ratio, 3),
                     Table::num(t3e_ms, 3), Table::num(bw_ms, 3)});
    }
  }
  table.print(std::cout);

  std::puts("\nreading: the plane's halo volume does not shrink with P, so "
            "it loses at mid/large P; the cube wins on volume only once its "
            "26 messages are amortised (large P, low-latency network); the "
            "square pillar is the mid-size sweet spot — and its 2-D torus "
            "with 8 fixed neighbours is what makes permanent-cell DLB "
            "tractable (the paper's motivation).");
  return 0;
}
