// Micro-benchmarks M1: the MD kernels.
//
// Measures the real (host) cost of the force loop — cell-list vs O(N^2) —
// the cell binning, and the potential evaluation. These are host-machine
// microbenchmarks (google-benchmark); the virtual-machine cost model charges
// pair evaluations independently of these numbers.

#include "md/cell_grid.hpp"
#include "md/lj.hpp"
#include "md/neighbor_list.hpp"
#include "md/serial_md.hpp"
#include "util/rng.hpp"
#include "workload/gas.hpp"

#include <benchmark/benchmark.h>

#include <numeric>

namespace {

using namespace pcmd;

md::ParticleVector make_gas(std::int64_t n, const Box& box) {
  Rng rng(42);
  workload::GasConfig config;
  config.min_separation = 0.8;
  return workload::random_gas(n, box, config, rng);
}

// Box size scaled so density stays at rho* = 0.256 as N grows.
Box box_for(std::int64_t n) {
  const double volume = static_cast<double>(n) / 0.256;
  return Box::cubic(std::cbrt(volume));
}

void BM_ForcesCellList(benchmark::State& state) {
  const auto n = state.range(0);
  const Box box = box_for(n);
  auto particles = make_gas(n, box);
  const md::CellGrid grid(box, 2.5);
  md::CellBins bins(grid, particles);
  const md::LennardJones lj(2.5);
  std::vector<int> all(grid.num_cells());
  std::iota(all.begin(), all.end(), 0);
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    bins.rebuild(grid, particles);
    const auto result = md::accumulate_forces(particles, grid, bins, all, lj);
    pairs = result.pair_evaluations;
    benchmark::DoNotOptimize(result.potential_energy);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(pairs));
}
BENCHMARK(BM_ForcesCellList)->Arg(250)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_ForcesNaive(benchmark::State& state) {
  const auto n = state.range(0);
  const Box box = box_for(n);
  auto particles = make_gas(n, box);
  const md::LennardJones lj(2.5);
  for (auto _ : state) {
    const auto result = md::accumulate_forces_naive(particles, box, lj);
    benchmark::DoNotOptimize(result.potential_energy);
  }
  state.SetItemsProcessed(state.iterations() * n * (n - 1) / 2);
}
BENCHMARK(BM_ForcesNaive)->Arg(250)->Arg(1000)->Arg(4000);

void BM_CellBinsRebuild(benchmark::State& state) {
  const auto n = state.range(0);
  const Box box = box_for(n);
  auto particles = make_gas(n, box);
  const md::CellGrid grid(box, 2.5);
  md::CellBins bins(grid, particles);
  for (auto _ : state) {
    bins.rebuild(grid, particles);
    benchmark::DoNotOptimize(bins.total());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CellBinsRebuild)->Arg(1000)->Arg(16000);

void BM_LennardJonesKernel(benchmark::State& state) {
  const md::LennardJones lj(2.5);
  double r2 = 1.1;
  double acc = 0.0;
  for (auto _ : state) {
    acc += lj.force_over_r(r2) + lj.potential_r2(r2);
    r2 = 0.8 + (r2 * 1.37 - std::floor(r2 * 1.37) ) * 5.0;  // wander in range
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_LennardJonesKernel);

void BM_ForcesNeighborList(benchmark::State& state) {
  const auto n = state.range(0);
  const Box box = box_for(n);
  auto particles = make_gas(n, box);
  const md::LennardJones lj(2.5);
  md::NeighborList list(box, 2.5, 0.4);
  list.rebuild(particles);
  for (auto _ : state) {
    if (list.needs_rebuild(particles)) list.rebuild(particles);
    const auto result = list.compute(particles, lj);
    benchmark::DoNotOptimize(result.potential_energy);
  }
  state.counters["pairs"] = static_cast<double>(list.pair_count());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(list.pair_count()));
}
BENCHMARK(BM_ForcesNeighborList)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_SerialMdStep(benchmark::State& state) {
  const auto n = state.range(0);
  const Box box = box_for(n);
  md::SerialMdConfig config;
  config.dt = 0.004;
  md::SerialMd sim(box, make_gas(n, box), config);
  for (auto _ : state) {
    const auto stats = sim.step();
    benchmark::DoNotOptimize(stats.kinetic_energy);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SerialMdStep)->Arg(1000)->Arg(8000);

}  // namespace
