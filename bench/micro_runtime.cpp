// Micro-benchmarks M2: the virtual parallel machine runtime.
//
// Host-side overhead of phases, message passing and collectives on both
// engines — the fixed cost the simulation harness pays per MD step, as
// opposed to the modelled (virtual) time. The BM_Trace* group measures the
// observability layer: detached (compiled in, no sink — must stay within a
// few percent of the plain runtime) vs attached (events recorded).

#include "obs/collector.hpp"
#include "sim/comm.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace pcmd::sim;

void BM_SeqPhase(benchmark::State& state) {
  SeqEngine engine(static_cast<int>(state.range(0)),
                   MachineModel::ideal_network());
  for (auto _ : state) {
    engine.run_phase([](Comm& comm) { comm.advance(1e-9); });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SeqPhase)->Arg(9)->Arg(36)->Arg(64);

void BM_ThreadPhase(benchmark::State& state) {
  ThreadEngine engine(static_cast<int>(state.range(0)),
                      MachineModel::ideal_network());
  for (auto _ : state) {
    engine.run_phase([](Comm& comm) { comm.advance(1e-9); });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ThreadPhase)->Arg(9)->Arg(36);

void BM_SendRecvRing(benchmark::State& state) {
  const int ranks = 16;
  SeqEngine engine(ranks, MachineModel::ideal_network());
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    engine.run_phase([bytes](Comm& comm) {
      Buffer payload(bytes);
      comm.send((comm.rank() + 1) % comm.size(), 0, std::move(payload));
    });
    engine.run_phase([](Comm& comm) {
      const int src = (comm.rank() + comm.size() - 1) % comm.size();
      benchmark::DoNotOptimize(comm.recv(src, 0));
    });
  }
  state.SetBytesProcessed(state.iterations() * ranks *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_SendRecvRing)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Collective(benchmark::State& state) {
  SeqEngine engine(static_cast<int>(state.range(0)),
                   MachineModel::ideal_network());
  for (auto _ : state) {
    engine.run_phase([](Comm& comm) {
      comm.reduce_begin(ReduceOp::kSum, 1.0);
    });
    engine.run_phase([](Comm& comm) {
      benchmark::DoNotOptimize(comm.reduce_end());
    });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Collective)->Arg(9)->Arg(64);

// The traced workload: one compute advance, one ring send + recv, one
// reduction — every hook the engine can fire, once per rank per iteration.
void traffic_phases(Engine& engine) {
  engine.run_phase([](Comm& comm) {
    comm.advance(1e-9);
    Buffer payload(64);
    comm.send((comm.rank() + 1) % comm.size(), 0, std::move(payload));
    comm.reduce_begin(ReduceOp::kSum, 1.0);
  });
  engine.run_phase([](Comm& comm) {
    const int src = (comm.rank() + comm.size() - 1) % comm.size();
    benchmark::DoNotOptimize(comm.recv(src, 0));
    benchmark::DoNotOptimize(comm.reduce_end());
  });
}

void BM_TraceDetached(benchmark::State& state) {
  SeqEngine engine(static_cast<int>(state.range(0)),
                   MachineModel::ideal_network());
  for (auto _ : state) {
    traffic_phases(engine);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceDetached)->Arg(9)->Arg(36);

void BM_TraceAttached(benchmark::State& state) {
  SeqEngine engine(static_cast<int>(state.range(0)),
                   MachineModel::ideal_network());
  pcmd::obs::TraceCollector collector;
  engine.set_trace_sink(&collector);
  for (auto _ : state) {
    traffic_phases(engine);
  }
  engine.set_trace_sink(nullptr);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceAttached)->Arg(9)->Arg(36);

void BM_PackUnpackParticles(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<double> values(count, 1.25);
  for (auto _ : state) {
    Packer packer;
    packer.put_vector(values);
    Unpacker unpacker(packer.take());
    benchmark::DoNotOptimize(unpacker.get_vector<double>());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(count * sizeof(double)));
}
BENCHMARK(BM_PackUnpackParticles)->Arg(64)->Arg(4096);

}  // namespace
