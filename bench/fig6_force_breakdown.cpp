// Figure 6 reproduction: per-step execution time Tt and the force
// computation times Fmax / Fave / Fmin across PEs, for DDM (a) and DLB-DDM
// (b) at m = 4.
//
// Paper observations to reproduce in shape:
//   * Tt tracks Fmax (PEs synchronise every step);
//   * under DDM the gap Fmax - Fmin widens steadily as the gas condenses;
//   * under DLB-DDM the gap stays small until the concentration exceeds the
//     DLB limit, after which it starts to grow too.
//
//   ./fig6_force_breakdown [--steps 1500] [--interval 125]
//                          [--density 0.384] [--seed 1] [--full]
//                          [--trace out/fig6]
//                          [--faults seed=7,drop=0.05] [--checkpoint-every N]
// (default density 0.384 > paper's 0.256 so condensation develops within
//  the scaled step budget; --full restores paper conditions)
//
// --faults PLAN injects deterministic message faults and routes traffic
// through the reliable channel (physics unchanged; retry counters land in
// the CSV). --checkpoint-every N serializes a checkpoint every N steps.
//
// All numbers come from the per-step metrics stream (obs::StepMetrics), the
// same rows --trace writes as PATH.ddm.csv / PATH.dlb.csv; the Chrome
// trace-event JSONs next to them open in Perfetto.

#include "obs/chrome_trace.hpp"
#include "obs/collector.hpp"
#include "obs/metrics.hpp"
#include "run/run_spec.hpp"
#include "theory/effective_range.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <iostream>

using namespace pcmd;

namespace {

void print_breakdown(const char* title,
                     const std::vector<obs::StepMetrics>& rows, int interval) {
  std::printf("%s\n", title);
  Table table({"steps", "Tt [s]", "Fmax [s]", "Fave [s]", "Fmin [s]",
               "(Fmax-Fmin)/Fave"});
  const int steps = static_cast<int>(rows.size());
  for (int hi = interval; hi <= steps; hi += interval) {
    double tt = 0, fmax = 0, fave = 0, fmin = 0;
    for (int i = hi - interval; i < hi; ++i) {
      tt += rows[i].t_step;
      fmax += rows[i].force_max;
      fave += rows[i].force_avg;
      fmin += rows[i].force_min;
    }
    const double inv = 1.0 / interval;
    tt *= inv;
    fmax *= inv;
    fave *= inv;
    fmin *= inv;
    table.add_row({std::to_string(hi), Table::num(tt, 4), Table::num(fmax, 4),
                   Table::num(fave, 4), Table::num(fmin, 4),
                   Table::num(fave > 0 ? (fmax - fmin) / fave : 0.0, 3)});
  }
  table.print(std::cout);
  std::printf("\n");
}

void export_run(const std::string& base, obs::TraceCollector& collector,
                std::span<const obs::StepMetrics> rows) {
  if (!obs::write_chrome_trace_file(base + ".json", collector)) {
    std::fprintf(stderr, "trace: failed to write %s.json\n", base.c_str());
  }
  if (!obs::write_csv_file(base + ".csv", rows)) {
    std::fprintf(stderr, "trace: failed to write %s.csv\n", base.c_str());
  }
  collector.clear();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool full = cli.get_bool("full", false);
  run::RunSpec defaults;
  defaults.system.pe_count = full ? 36 : 9;
  defaults.system.m = 4;
  defaults.system.density = full ? 0.256 : 0.384;
  defaults.system.seed = 1;
  defaults.steps = full ? 10000 : 1500;
  const auto spec = run::parse_run_spec(cli, defaults);
  const int steps = static_cast<int>(spec.steps);
  const int interval =
      static_cast<int>(cli.get_int("interval", std::max(1, steps / 12)));
  run::require_all_flags_consumed(cli, "fig6_force_breakdown");

  auto config = spec.trajectory_config();
  const auto& trace = spec.trace_path;

  obs::TraceCollector collector;
  if (trace) config.trace = &collector;

  std::printf("== Figure 6: Tt and Fmax/Fave/Fmin, m = 4, %d virtual PEs "
              "(T3E cost model) ==\n\n",
              config.spec.pe_count);

  config.dlb_enabled = false;
  const auto ddm = run_md_trajectory(config);
  print_breakdown("(a) DDM — the Fmax/Fmin gap widens with condensation",
                  ddm.metrics, interval);
  if (trace) export_run(*trace + ".ddm", collector, ddm.metrics);

  config.dlb_enabled = true;
  const auto dlb = run_md_trajectory(config);
  print_breakdown("(b) DLB-DDM — the gap stays small inside the DLB limit",
                  dlb.metrics, interval);
  if (trace) export_run(*trace + ".dlb", collector, dlb.metrics);

  if (!config.faults.empty()) {
    std::printf("fault tolerance: DDM %llu retransmissions, DLB-DDM %llu "
                "retransmissions (all masked; energies identical to a "
                "fault-free run)\n",
                static_cast<unsigned long long>(ddm.retransmissions_total),
                static_cast<unsigned long long>(dlb.retransmissions_total));
  }
  if (config.checkpoint_every > 0) {
    std::printf("checkpoints: %d taken per run, last %zu bytes\n",
                dlb.checkpoints_taken, dlb.last_checkpoint.size());
  }

  std::puts("paper shape: Tt follows Fmax in both; DLB-DDM holds "
            "Fmax ~ Fave ~ Fmin until concentration exceeds the DLB limit.");
  return 0;
}
