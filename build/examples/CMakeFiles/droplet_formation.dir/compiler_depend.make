# Empty compiler generated dependencies file for droplet_formation.
# This may be replaced when dependencies are built.
