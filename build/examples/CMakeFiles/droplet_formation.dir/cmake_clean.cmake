file(REMOVE_RECURSE
  "CMakeFiles/droplet_formation.dir/droplet_formation.cpp.o"
  "CMakeFiles/droplet_formation.dir/droplet_formation.cpp.o.d"
  "droplet_formation"
  "droplet_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droplet_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
