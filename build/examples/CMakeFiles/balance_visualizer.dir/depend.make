# Empty dependencies file for balance_visualizer.
# This may be replaced when dependencies are built.
