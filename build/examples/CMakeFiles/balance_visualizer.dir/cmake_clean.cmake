file(REMOVE_RECURSE
  "CMakeFiles/balance_visualizer.dir/balance_visualizer.cpp.o"
  "CMakeFiles/balance_visualizer.dir/balance_visualizer.cpp.o.d"
  "balance_visualizer"
  "balance_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
