# Empty compiler generated dependencies file for trajectory_analysis.
# This may be replaced when dependencies are built.
