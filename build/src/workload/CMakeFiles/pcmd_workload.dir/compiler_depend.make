# Empty compiler generated dependencies file for pcmd_workload.
# This may be replaced when dependencies are built.
