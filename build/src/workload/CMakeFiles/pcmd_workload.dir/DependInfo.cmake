
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/cluster.cpp" "src/workload/CMakeFiles/pcmd_workload.dir/cluster.cpp.o" "gcc" "src/workload/CMakeFiles/pcmd_workload.dir/cluster.cpp.o.d"
  "/root/repo/src/workload/gas.cpp" "src/workload/CMakeFiles/pcmd_workload.dir/gas.cpp.o" "gcc" "src/workload/CMakeFiles/pcmd_workload.dir/gas.cpp.o.d"
  "/root/repo/src/workload/lattice.cpp" "src/workload/CMakeFiles/pcmd_workload.dir/lattice.cpp.o" "gcc" "src/workload/CMakeFiles/pcmd_workload.dir/lattice.cpp.o.d"
  "/root/repo/src/workload/paper_system.cpp" "src/workload/CMakeFiles/pcmd_workload.dir/paper_system.cpp.o" "gcc" "src/workload/CMakeFiles/pcmd_workload.dir/paper_system.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/workload/CMakeFiles/pcmd_workload.dir/synthetic.cpp.o" "gcc" "src/workload/CMakeFiles/pcmd_workload.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/pcmd_md.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
