file(REMOVE_RECURSE
  "CMakeFiles/pcmd_workload.dir/cluster.cpp.o"
  "CMakeFiles/pcmd_workload.dir/cluster.cpp.o.d"
  "CMakeFiles/pcmd_workload.dir/gas.cpp.o"
  "CMakeFiles/pcmd_workload.dir/gas.cpp.o.d"
  "CMakeFiles/pcmd_workload.dir/lattice.cpp.o"
  "CMakeFiles/pcmd_workload.dir/lattice.cpp.o.d"
  "CMakeFiles/pcmd_workload.dir/paper_system.cpp.o"
  "CMakeFiles/pcmd_workload.dir/paper_system.cpp.o.d"
  "CMakeFiles/pcmd_workload.dir/synthetic.cpp.o"
  "CMakeFiles/pcmd_workload.dir/synthetic.cpp.o.d"
  "libpcmd_workload.a"
  "libpcmd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
