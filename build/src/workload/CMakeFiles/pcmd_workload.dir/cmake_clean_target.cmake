file(REMOVE_RECURSE
  "libpcmd_workload.a"
)
