file(REMOVE_RECURSE
  "CMakeFiles/pcmd_theory.dir/boundary.cpp.o"
  "CMakeFiles/pcmd_theory.dir/boundary.cpp.o.d"
  "CMakeFiles/pcmd_theory.dir/bounds.cpp.o"
  "CMakeFiles/pcmd_theory.dir/bounds.cpp.o.d"
  "CMakeFiles/pcmd_theory.dir/concentration.cpp.o"
  "CMakeFiles/pcmd_theory.dir/concentration.cpp.o.d"
  "CMakeFiles/pcmd_theory.dir/effective_range.cpp.o"
  "CMakeFiles/pcmd_theory.dir/effective_range.cpp.o.d"
  "CMakeFiles/pcmd_theory.dir/synthetic_balance.cpp.o"
  "CMakeFiles/pcmd_theory.dir/synthetic_balance.cpp.o.d"
  "libpcmd_theory.a"
  "libpcmd_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmd_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
