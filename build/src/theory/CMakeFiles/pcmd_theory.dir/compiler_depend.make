# Empty compiler generated dependencies file for pcmd_theory.
# This may be replaced when dependencies are built.
