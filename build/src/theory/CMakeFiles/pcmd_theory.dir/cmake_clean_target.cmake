file(REMOVE_RECURSE
  "libpcmd_theory.a"
)
