src/md/CMakeFiles/pcmd_md.dir/units.cpp.o: /root/repo/src/md/units.cpp \
 /usr/include/stdc-predef.h /root/repo/src/util/../md/units.hpp
