file(REMOVE_RECURSE
  "libpcmd_md.a"
)
