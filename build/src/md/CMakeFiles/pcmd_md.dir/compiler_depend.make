# Empty compiler generated dependencies file for pcmd_md.
# This may be replaced when dependencies are built.
