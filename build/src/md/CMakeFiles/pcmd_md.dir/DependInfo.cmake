
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/cell_grid.cpp" "src/md/CMakeFiles/pcmd_md.dir/cell_grid.cpp.o" "gcc" "src/md/CMakeFiles/pcmd_md.dir/cell_grid.cpp.o.d"
  "/root/repo/src/md/integrator.cpp" "src/md/CMakeFiles/pcmd_md.dir/integrator.cpp.o" "gcc" "src/md/CMakeFiles/pcmd_md.dir/integrator.cpp.o.d"
  "/root/repo/src/md/lj.cpp" "src/md/CMakeFiles/pcmd_md.dir/lj.cpp.o" "gcc" "src/md/CMakeFiles/pcmd_md.dir/lj.cpp.o.d"
  "/root/repo/src/md/neighbor_list.cpp" "src/md/CMakeFiles/pcmd_md.dir/neighbor_list.cpp.o" "gcc" "src/md/CMakeFiles/pcmd_md.dir/neighbor_list.cpp.o.d"
  "/root/repo/src/md/observables.cpp" "src/md/CMakeFiles/pcmd_md.dir/observables.cpp.o" "gcc" "src/md/CMakeFiles/pcmd_md.dir/observables.cpp.o.d"
  "/root/repo/src/md/rdf.cpp" "src/md/CMakeFiles/pcmd_md.dir/rdf.cpp.o" "gcc" "src/md/CMakeFiles/pcmd_md.dir/rdf.cpp.o.d"
  "/root/repo/src/md/serial_md.cpp" "src/md/CMakeFiles/pcmd_md.dir/serial_md.cpp.o" "gcc" "src/md/CMakeFiles/pcmd_md.dir/serial_md.cpp.o.d"
  "/root/repo/src/md/thermostat.cpp" "src/md/CMakeFiles/pcmd_md.dir/thermostat.cpp.o" "gcc" "src/md/CMakeFiles/pcmd_md.dir/thermostat.cpp.o.d"
  "/root/repo/src/md/units.cpp" "src/md/CMakeFiles/pcmd_md.dir/units.cpp.o" "gcc" "src/md/CMakeFiles/pcmd_md.dir/units.cpp.o.d"
  "/root/repo/src/md/xyz.cpp" "src/md/CMakeFiles/pcmd_md.dir/xyz.cpp.o" "gcc" "src/md/CMakeFiles/pcmd_md.dir/xyz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pcmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
