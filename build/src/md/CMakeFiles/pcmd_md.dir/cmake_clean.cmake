file(REMOVE_RECURSE
  "CMakeFiles/pcmd_md.dir/cell_grid.cpp.o"
  "CMakeFiles/pcmd_md.dir/cell_grid.cpp.o.d"
  "CMakeFiles/pcmd_md.dir/integrator.cpp.o"
  "CMakeFiles/pcmd_md.dir/integrator.cpp.o.d"
  "CMakeFiles/pcmd_md.dir/lj.cpp.o"
  "CMakeFiles/pcmd_md.dir/lj.cpp.o.d"
  "CMakeFiles/pcmd_md.dir/neighbor_list.cpp.o"
  "CMakeFiles/pcmd_md.dir/neighbor_list.cpp.o.d"
  "CMakeFiles/pcmd_md.dir/observables.cpp.o"
  "CMakeFiles/pcmd_md.dir/observables.cpp.o.d"
  "CMakeFiles/pcmd_md.dir/rdf.cpp.o"
  "CMakeFiles/pcmd_md.dir/rdf.cpp.o.d"
  "CMakeFiles/pcmd_md.dir/serial_md.cpp.o"
  "CMakeFiles/pcmd_md.dir/serial_md.cpp.o.d"
  "CMakeFiles/pcmd_md.dir/thermostat.cpp.o"
  "CMakeFiles/pcmd_md.dir/thermostat.cpp.o.d"
  "CMakeFiles/pcmd_md.dir/units.cpp.o"
  "CMakeFiles/pcmd_md.dir/units.cpp.o.d"
  "CMakeFiles/pcmd_md.dir/xyz.cpp.o"
  "CMakeFiles/pcmd_md.dir/xyz.cpp.o.d"
  "libpcmd_md.a"
  "libpcmd_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmd_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
