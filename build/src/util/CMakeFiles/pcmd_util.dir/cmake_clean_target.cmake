file(REMOVE_RECURSE
  "libpcmd_util.a"
)
