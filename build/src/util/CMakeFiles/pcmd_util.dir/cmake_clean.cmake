file(REMOVE_RECURSE
  "CMakeFiles/pcmd_util.dir/cli.cpp.o"
  "CMakeFiles/pcmd_util.dir/cli.cpp.o.d"
  "CMakeFiles/pcmd_util.dir/least_squares.cpp.o"
  "CMakeFiles/pcmd_util.dir/least_squares.cpp.o.d"
  "CMakeFiles/pcmd_util.dir/log.cpp.o"
  "CMakeFiles/pcmd_util.dir/log.cpp.o.d"
  "CMakeFiles/pcmd_util.dir/pbc.cpp.o"
  "CMakeFiles/pcmd_util.dir/pbc.cpp.o.d"
  "CMakeFiles/pcmd_util.dir/rng.cpp.o"
  "CMakeFiles/pcmd_util.dir/rng.cpp.o.d"
  "CMakeFiles/pcmd_util.dir/stats.cpp.o"
  "CMakeFiles/pcmd_util.dir/stats.cpp.o.d"
  "CMakeFiles/pcmd_util.dir/table.cpp.o"
  "CMakeFiles/pcmd_util.dir/table.cpp.o.d"
  "CMakeFiles/pcmd_util.dir/vec3.cpp.o"
  "CMakeFiles/pcmd_util.dir/vec3.cpp.o.d"
  "libpcmd_util.a"
  "libpcmd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
