# Empty compiler generated dependencies file for pcmd_util.
# This may be replaced when dependencies are built.
