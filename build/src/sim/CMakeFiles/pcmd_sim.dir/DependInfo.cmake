
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/comm.cpp" "src/sim/CMakeFiles/pcmd_sim.dir/comm.cpp.o" "gcc" "src/sim/CMakeFiles/pcmd_sim.dir/comm.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/pcmd_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/pcmd_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/mailbox.cpp" "src/sim/CMakeFiles/pcmd_sim.dir/mailbox.cpp.o" "gcc" "src/sim/CMakeFiles/pcmd_sim.dir/mailbox.cpp.o.d"
  "/root/repo/src/sim/message.cpp" "src/sim/CMakeFiles/pcmd_sim.dir/message.cpp.o" "gcc" "src/sim/CMakeFiles/pcmd_sim.dir/message.cpp.o.d"
  "/root/repo/src/sim/seq_engine.cpp" "src/sim/CMakeFiles/pcmd_sim.dir/seq_engine.cpp.o" "gcc" "src/sim/CMakeFiles/pcmd_sim.dir/seq_engine.cpp.o.d"
  "/root/repo/src/sim/thread_engine.cpp" "src/sim/CMakeFiles/pcmd_sim.dir/thread_engine.cpp.o" "gcc" "src/sim/CMakeFiles/pcmd_sim.dir/thread_engine.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/sim/CMakeFiles/pcmd_sim.dir/topology.cpp.o" "gcc" "src/sim/CMakeFiles/pcmd_sim.dir/topology.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/pcmd_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/pcmd_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pcmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
