# Empty compiler generated dependencies file for pcmd_sim.
# This may be replaced when dependencies are built.
