file(REMOVE_RECURSE
  "CMakeFiles/pcmd_sim.dir/comm.cpp.o"
  "CMakeFiles/pcmd_sim.dir/comm.cpp.o.d"
  "CMakeFiles/pcmd_sim.dir/cost_model.cpp.o"
  "CMakeFiles/pcmd_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/pcmd_sim.dir/mailbox.cpp.o"
  "CMakeFiles/pcmd_sim.dir/mailbox.cpp.o.d"
  "CMakeFiles/pcmd_sim.dir/message.cpp.o"
  "CMakeFiles/pcmd_sim.dir/message.cpp.o.d"
  "CMakeFiles/pcmd_sim.dir/seq_engine.cpp.o"
  "CMakeFiles/pcmd_sim.dir/seq_engine.cpp.o.d"
  "CMakeFiles/pcmd_sim.dir/thread_engine.cpp.o"
  "CMakeFiles/pcmd_sim.dir/thread_engine.cpp.o.d"
  "CMakeFiles/pcmd_sim.dir/topology.cpp.o"
  "CMakeFiles/pcmd_sim.dir/topology.cpp.o.d"
  "CMakeFiles/pcmd_sim.dir/trace.cpp.o"
  "CMakeFiles/pcmd_sim.dir/trace.cpp.o.d"
  "libpcmd_sim.a"
  "libpcmd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
