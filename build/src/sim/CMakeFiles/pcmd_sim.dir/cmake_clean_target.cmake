file(REMOVE_RECURSE
  "libpcmd_sim.a"
)
