# Empty compiler generated dependencies file for pcmd_core.
# This may be replaced when dependencies are built.
