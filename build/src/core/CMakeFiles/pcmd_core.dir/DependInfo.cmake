
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/column_map.cpp" "src/core/CMakeFiles/pcmd_core.dir/column_map.cpp.o" "gcc" "src/core/CMakeFiles/pcmd_core.dir/column_map.cpp.o.d"
  "/root/repo/src/core/dlb_protocol.cpp" "src/core/CMakeFiles/pcmd_core.dir/dlb_protocol.cpp.o" "gcc" "src/core/CMakeFiles/pcmd_core.dir/dlb_protocol.cpp.o.d"
  "/root/repo/src/core/invariant.cpp" "src/core/CMakeFiles/pcmd_core.dir/invariant.cpp.o" "gcc" "src/core/CMakeFiles/pcmd_core.dir/invariant.cpp.o.d"
  "/root/repo/src/core/pillar_layout.cpp" "src/core/CMakeFiles/pcmd_core.dir/pillar_layout.cpp.o" "gcc" "src/core/CMakeFiles/pcmd_core.dir/pillar_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pcmd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
