file(REMOVE_RECURSE
  "CMakeFiles/pcmd_core.dir/column_map.cpp.o"
  "CMakeFiles/pcmd_core.dir/column_map.cpp.o.d"
  "CMakeFiles/pcmd_core.dir/dlb_protocol.cpp.o"
  "CMakeFiles/pcmd_core.dir/dlb_protocol.cpp.o.d"
  "CMakeFiles/pcmd_core.dir/invariant.cpp.o"
  "CMakeFiles/pcmd_core.dir/invariant.cpp.o.d"
  "CMakeFiles/pcmd_core.dir/pillar_layout.cpp.o"
  "CMakeFiles/pcmd_core.dir/pillar_layout.cpp.o.d"
  "libpcmd_core.a"
  "libpcmd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
