file(REMOVE_RECURSE
  "libpcmd_core.a"
)
