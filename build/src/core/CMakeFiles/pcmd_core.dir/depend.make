# Empty dependencies file for pcmd_core.
# This may be replaced when dependencies are built.
