file(REMOVE_RECURSE
  "CMakeFiles/pcmd_ddm.dir/comm_volume.cpp.o"
  "CMakeFiles/pcmd_ddm.dir/comm_volume.cpp.o.d"
  "CMakeFiles/pcmd_ddm.dir/parallel_md.cpp.o"
  "CMakeFiles/pcmd_ddm.dir/parallel_md.cpp.o.d"
  "CMakeFiles/pcmd_ddm.dir/slab_md.cpp.o"
  "CMakeFiles/pcmd_ddm.dir/slab_md.cpp.o.d"
  "CMakeFiles/pcmd_ddm.dir/wire.cpp.o"
  "CMakeFiles/pcmd_ddm.dir/wire.cpp.o.d"
  "libpcmd_ddm.a"
  "libpcmd_ddm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmd_ddm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
