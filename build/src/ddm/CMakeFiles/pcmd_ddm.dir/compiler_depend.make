# Empty compiler generated dependencies file for pcmd_ddm.
# This may be replaced when dependencies are built.
