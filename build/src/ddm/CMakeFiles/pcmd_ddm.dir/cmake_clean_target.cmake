file(REMOVE_RECURSE
  "libpcmd_ddm.a"
)
