# Empty dependencies file for fig9_trajectory.
# This may be replaced when dependencies are built.
