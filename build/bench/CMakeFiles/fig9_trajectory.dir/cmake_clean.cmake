file(REMOVE_RECURSE
  "CMakeFiles/fig9_trajectory.dir/fig9_trajectory.cpp.o"
  "CMakeFiles/fig9_trajectory.dir/fig9_trajectory.cpp.o.d"
  "fig9_trajectory"
  "fig9_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
