
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_trajectory.cpp" "bench/CMakeFiles/fig9_trajectory.dir/fig9_trajectory.cpp.o" "gcc" "bench/CMakeFiles/fig9_trajectory.dir/fig9_trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/theory/CMakeFiles/pcmd_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/ddm/CMakeFiles/pcmd_ddm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcmd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pcmd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/pcmd_md.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcmd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
