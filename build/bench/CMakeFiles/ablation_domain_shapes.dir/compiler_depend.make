# Empty compiler generated dependencies file for ablation_domain_shapes.
# This may be replaced when dependencies are built.
