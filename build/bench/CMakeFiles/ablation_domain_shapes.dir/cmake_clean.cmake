file(REMOVE_RECURSE
  "CMakeFiles/ablation_domain_shapes.dir/ablation_domain_shapes.cpp.o"
  "CMakeFiles/ablation_domain_shapes.dir/ablation_domain_shapes.cpp.o.d"
  "ablation_domain_shapes"
  "ablation_domain_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_domain_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
