# Empty dependencies file for fig5_exec_time.
# This may be replaced when dependencies are built.
