# Empty compiler generated dependencies file for micro_md.
# This may be replaced when dependencies are built.
