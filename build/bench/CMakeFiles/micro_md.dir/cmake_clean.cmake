file(REMOVE_RECURSE
  "CMakeFiles/micro_md.dir/micro_md.cpp.o"
  "CMakeFiles/micro_md.dir/micro_md.cpp.o.d"
  "micro_md"
  "micro_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
