# Empty compiler generated dependencies file for fig10_effective_range.
# This may be replaced when dependencies are built.
