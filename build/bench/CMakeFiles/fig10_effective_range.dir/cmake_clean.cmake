file(REMOVE_RECURSE
  "CMakeFiles/fig10_effective_range.dir/fig10_effective_range.cpp.o"
  "CMakeFiles/fig10_effective_range.dir/fig10_effective_range.cpp.o.d"
  "fig10_effective_range"
  "fig10_effective_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_effective_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
