# Empty dependencies file for fig6_force_breakdown.
# This may be replaced when dependencies are built.
