# Empty dependencies file for ablation_baseline_1d.
# This may be replaced when dependencies are built.
