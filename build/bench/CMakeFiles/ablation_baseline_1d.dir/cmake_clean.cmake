file(REMOVE_RECURSE
  "CMakeFiles/ablation_baseline_1d.dir/ablation_baseline_1d.cpp.o"
  "CMakeFiles/ablation_baseline_1d.dir/ablation_baseline_1d.cpp.o.d"
  "ablation_baseline_1d"
  "ablation_baseline_1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_baseline_1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
