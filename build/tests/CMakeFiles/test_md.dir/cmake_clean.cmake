file(REMOVE_RECURSE
  "CMakeFiles/test_md.dir/md/cell_grid_test.cpp.o"
  "CMakeFiles/test_md.dir/md/cell_grid_test.cpp.o.d"
  "CMakeFiles/test_md.dir/md/forces_test.cpp.o"
  "CMakeFiles/test_md.dir/md/forces_test.cpp.o.d"
  "CMakeFiles/test_md.dir/md/integrator_test.cpp.o"
  "CMakeFiles/test_md.dir/md/integrator_test.cpp.o.d"
  "CMakeFiles/test_md.dir/md/lj_test.cpp.o"
  "CMakeFiles/test_md.dir/md/lj_test.cpp.o.d"
  "CMakeFiles/test_md.dir/md/neighbor_list_test.cpp.o"
  "CMakeFiles/test_md.dir/md/neighbor_list_test.cpp.o.d"
  "CMakeFiles/test_md.dir/md/pressure_test.cpp.o"
  "CMakeFiles/test_md.dir/md/pressure_test.cpp.o.d"
  "CMakeFiles/test_md.dir/md/rdf_test.cpp.o"
  "CMakeFiles/test_md.dir/md/rdf_test.cpp.o.d"
  "CMakeFiles/test_md.dir/md/restart_test.cpp.o"
  "CMakeFiles/test_md.dir/md/restart_test.cpp.o.d"
  "CMakeFiles/test_md.dir/md/serial_md_test.cpp.o"
  "CMakeFiles/test_md.dir/md/serial_md_test.cpp.o.d"
  "CMakeFiles/test_md.dir/md/thermostat_test.cpp.o"
  "CMakeFiles/test_md.dir/md/thermostat_test.cpp.o.d"
  "CMakeFiles/test_md.dir/md/units_test.cpp.o"
  "CMakeFiles/test_md.dir/md/units_test.cpp.o.d"
  "CMakeFiles/test_md.dir/md/xyz_test.cpp.o"
  "CMakeFiles/test_md.dir/md/xyz_test.cpp.o.d"
  "test_md"
  "test_md.pdb"
  "test_md[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
