
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/md/cell_grid_test.cpp" "tests/CMakeFiles/test_md.dir/md/cell_grid_test.cpp.o" "gcc" "tests/CMakeFiles/test_md.dir/md/cell_grid_test.cpp.o.d"
  "/root/repo/tests/md/forces_test.cpp" "tests/CMakeFiles/test_md.dir/md/forces_test.cpp.o" "gcc" "tests/CMakeFiles/test_md.dir/md/forces_test.cpp.o.d"
  "/root/repo/tests/md/integrator_test.cpp" "tests/CMakeFiles/test_md.dir/md/integrator_test.cpp.o" "gcc" "tests/CMakeFiles/test_md.dir/md/integrator_test.cpp.o.d"
  "/root/repo/tests/md/lj_test.cpp" "tests/CMakeFiles/test_md.dir/md/lj_test.cpp.o" "gcc" "tests/CMakeFiles/test_md.dir/md/lj_test.cpp.o.d"
  "/root/repo/tests/md/neighbor_list_test.cpp" "tests/CMakeFiles/test_md.dir/md/neighbor_list_test.cpp.o" "gcc" "tests/CMakeFiles/test_md.dir/md/neighbor_list_test.cpp.o.d"
  "/root/repo/tests/md/pressure_test.cpp" "tests/CMakeFiles/test_md.dir/md/pressure_test.cpp.o" "gcc" "tests/CMakeFiles/test_md.dir/md/pressure_test.cpp.o.d"
  "/root/repo/tests/md/rdf_test.cpp" "tests/CMakeFiles/test_md.dir/md/rdf_test.cpp.o" "gcc" "tests/CMakeFiles/test_md.dir/md/rdf_test.cpp.o.d"
  "/root/repo/tests/md/restart_test.cpp" "tests/CMakeFiles/test_md.dir/md/restart_test.cpp.o" "gcc" "tests/CMakeFiles/test_md.dir/md/restart_test.cpp.o.d"
  "/root/repo/tests/md/serial_md_test.cpp" "tests/CMakeFiles/test_md.dir/md/serial_md_test.cpp.o" "gcc" "tests/CMakeFiles/test_md.dir/md/serial_md_test.cpp.o.d"
  "/root/repo/tests/md/thermostat_test.cpp" "tests/CMakeFiles/test_md.dir/md/thermostat_test.cpp.o" "gcc" "tests/CMakeFiles/test_md.dir/md/thermostat_test.cpp.o.d"
  "/root/repo/tests/md/units_test.cpp" "tests/CMakeFiles/test_md.dir/md/units_test.cpp.o" "gcc" "tests/CMakeFiles/test_md.dir/md/units_test.cpp.o.d"
  "/root/repo/tests/md/xyz_test.cpp" "tests/CMakeFiles/test_md.dir/md/xyz_test.cpp.o" "gcc" "tests/CMakeFiles/test_md.dir/md/xyz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/pcmd_md.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pcmd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
