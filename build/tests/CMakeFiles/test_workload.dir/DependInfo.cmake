
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/cluster_test.cpp" "tests/CMakeFiles/test_workload.dir/workload/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/cluster_test.cpp.o.d"
  "/root/repo/tests/workload/gas_test.cpp" "tests/CMakeFiles/test_workload.dir/workload/gas_test.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/gas_test.cpp.o.d"
  "/root/repo/tests/workload/lattice_test.cpp" "tests/CMakeFiles/test_workload.dir/workload/lattice_test.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/lattice_test.cpp.o.d"
  "/root/repo/tests/workload/paper_system_test.cpp" "tests/CMakeFiles/test_workload.dir/workload/paper_system_test.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/paper_system_test.cpp.o.d"
  "/root/repo/tests/workload/synthetic_test.cpp" "tests/CMakeFiles/test_workload.dir/workload/synthetic_test.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/synthetic_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/pcmd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/pcmd_md.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
