file(REMOVE_RECURSE
  "CMakeFiles/test_ddm.dir/ddm/comm_volume_test.cpp.o"
  "CMakeFiles/test_ddm.dir/ddm/comm_volume_test.cpp.o.d"
  "CMakeFiles/test_ddm.dir/ddm/parallel_md_test.cpp.o"
  "CMakeFiles/test_ddm.dir/ddm/parallel_md_test.cpp.o.d"
  "CMakeFiles/test_ddm.dir/ddm/parity_sweep_test.cpp.o"
  "CMakeFiles/test_ddm.dir/ddm/parity_sweep_test.cpp.o.d"
  "CMakeFiles/test_ddm.dir/ddm/slab_md_test.cpp.o"
  "CMakeFiles/test_ddm.dir/ddm/slab_md_test.cpp.o.d"
  "CMakeFiles/test_ddm.dir/ddm/wire_test.cpp.o"
  "CMakeFiles/test_ddm.dir/ddm/wire_test.cpp.o.d"
  "test_ddm"
  "test_ddm.pdb"
  "test_ddm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
