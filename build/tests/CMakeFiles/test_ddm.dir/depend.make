# Empty dependencies file for test_ddm.
# This may be replaced when dependencies are built.
