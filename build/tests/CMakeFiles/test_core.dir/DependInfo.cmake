
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/column_map_test.cpp" "tests/CMakeFiles/test_core.dir/core/column_map_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/column_map_test.cpp.o.d"
  "/root/repo/tests/core/dlb_protocol_test.cpp" "tests/CMakeFiles/test_core.dir/core/dlb_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/dlb_protocol_test.cpp.o.d"
  "/root/repo/tests/core/invariant_test.cpp" "tests/CMakeFiles/test_core.dir/core/invariant_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/invariant_test.cpp.o.d"
  "/root/repo/tests/core/pillar_layout_test.cpp" "tests/CMakeFiles/test_core.dir/core/pillar_layout_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/pillar_layout_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pcmd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcmd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
