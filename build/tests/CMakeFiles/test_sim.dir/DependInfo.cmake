
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/cost_model_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/cost_model_test.cpp.o.d"
  "/root/repo/tests/sim/engine_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/engine_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/engine_test.cpp.o.d"
  "/root/repo/tests/sim/message_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/message_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/message_test.cpp.o.d"
  "/root/repo/tests/sim/stress_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/stress_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/stress_test.cpp.o.d"
  "/root/repo/tests/sim/topology_test.cpp" "tests/CMakeFiles/test_sim.dir/sim/topology_test.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pcmd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcmd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
