// Balance visualizer: watch permanent-cell DLB redistribute columns.
//
// Runs the synthetic concentrating workload through the occupancy-driven
// balance simulator and renders the cross-section column ownership as ASCII
// frames: each character is one column, letters identify the owning PE,
// upper-case marks permanent columns (which never move). Watch movable
// columns flow toward the PEs away from the forming droplets.
//
//   ./balance_visualizer [--pe-side 3] [--m 4] [--steps 240] [--frames 4]

#include "core/column_map.hpp"
#include "core/dlb_protocol.hpp"
#include "core/pillar_layout.hpp"
#include "md/cell_grid.hpp"
#include "util/cli.hpp"
#include "workload/synthetic.hpp"

#include <cstdio>
#include <string>
#include <vector>

using namespace pcmd;

namespace {

char glyph(int rank, bool permanent) {
  const char c = static_cast<char>('a' + rank % 26);
  return permanent ? static_cast<char>(c - 'a' + 'A') : c;
}

void render(const core::PillarLayout& layout, const core::ColumnMap& map,
            const std::vector<double>& column_load, int step) {
  const int k = layout.cells_axis();
  std::printf("step %d — columns by owner (UPPERCASE = permanent), right: "
              "load heat map\n", step);
  static const char* kShades = " .:-=+*#%@";
  double max_load = 1.0;
  for (const double v : column_load) max_load = std::max(max_load, v);
  for (int cy = k - 1; cy >= 0; --cy) {
    std::string owners, heat;
    for (int cx = 0; cx < k; ++cx) {
      const int col = layout.column_id(cx, cy);
      owners += glyph(map.owner(col), layout.is_permanent(col));
      const int shade = static_cast<int>(9.0 * column_load[col] / max_load);
      heat += kShades[shade];
    }
    std::printf("  %s   |%s|\n", owners.c_str(), heat.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int pe_side = static_cast<int>(cli.get_int("pe-side", 3));
  const int m = static_cast<int>(cli.get_int("m", 4));
  const int steps = static_cast<int>(cli.get_int("steps", 240));
  const int frames = static_cast<int>(cli.get_int("frames", 4));

  const core::PillarLayout layout(pe_side, m);
  const int k = layout.cells_axis();
  const Box box = Box::cubic(k * 2.5);
  const md::CellGrid grid(box, k, k, k);

  workload::SyntheticConfig synth;
  synth.particles = 400LL * layout.pe_count();
  synth.num_centers = 3;
  synth.seed = 9;
  const workload::ConcentratingWorkload blob(synth, box);

  core::ColumnMap map(layout);
  core::DlbConfig dlb;
  dlb.fallback_to_helpable = true;
  const core::DlbProtocol protocol(layout, dlb);

  std::vector<double> rank_time(layout.pe_count(), 0.0);
  std::vector<double> column_load(layout.num_columns(), 0.0);

  std::printf("permanent-cell DLB on a %dx%d PE torus, m=%d (K=%d)\n\n",
              pe_side, pe_side, m, k);
  for (int step = 1; step <= steps; ++step) {
    const double progress = static_cast<double>(step - 1) / (steps - 1);
    const auto particles = blob.state(progress);

    std::fill(column_load.begin(), column_load.end(), 0.0);
    for (const auto& p : particles) {
      const auto cell = grid.coord_of(grid.cell_of_position(p.position));
      column_load[layout.column_id(cell.x, cell.y)] += 1.0;
    }
    std::vector<double> new_time(layout.pe_count(), 0.0);
    for (int col = 0; col < layout.num_columns(); ++col) {
      new_time[map.owner(col)] += column_load[col];
    }

    for (int rank = 0; rank < layout.pe_count(); ++rank) {
      core::NeighborTimes times;
      times.self_time = rank_time[rank];
      for (const int nb : layout.pe_torus().neighbors8(rank)) {
        times.neighbor_times.push_back(rank_time[nb]);
      }
      core::DlbProtocol::apply(
          map, protocol.decide(rank, map, times,
                               [&](int col) { return column_load[col]; }));
    }
    rank_time = new_time;

    if (step == 1 || step % std::max(1, steps / frames) == 0) {
      render(layout, map, column_load, step);
      double max_t = 0.0, sum = 0.0;
      for (const double t : rank_time) {
        max_t = std::max(max_t, t);
        sum += t;
      }
      std::printf("  load: max/avg = %.2f\n\n",
                  sum > 0 ? max_t * layout.pe_count() / sum : 0.0);
    }
  }
  return 0;
}
