// Trajectory analysis: run a simulation, dump an XYZ trajectory, read it
// back, and compute structural observables per frame — the post-processing
// workflow a user of the library would actually run (the .xyz file loads
// directly in VMD/OVITO).
//
//   ./trajectory_analysis [--steps 400] [--frames 8] [--out traj.xyz]
//                         [--density 0.384]

#include "md/rdf.hpp"
#include "md/serial_md.hpp"
#include "md/xyz.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/cluster.hpp"
#include "workload/gas.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

int main(int argc, char** argv) {
  using namespace pcmd;
  const Cli cli(argc, argv);
  const auto steps = cli.get_int("steps", 400);
  const auto frames = std::max<std::int64_t>(1, cli.get_int("frames", 8));
  const std::string out = cli.get("out", "");
  const double density = cli.get_double("density", 0.384);

  const Box box = Box::cubic(15.0);
  const auto n = static_cast<std::int64_t>(density * box.volume());
  Rng rng(11);
  workload::GasConfig gas;
  gas.temperature = 0.722;

  md::SerialMdConfig config;
  config.dt = 0.005;
  config.rescale_temperature = 0.722;
  md::SerialMd sim(box, workload::random_gas(n, box, gas, rng), config);

  std::printf("trajectory analysis: N=%lld, rho*=%.3f, %lld steps, "
              "%lld frames%s%s\n\n",
              static_cast<long long>(n), density,
              static_cast<long long>(steps), static_cast<long long>(frames),
              out.empty() ? "" : ", writing ", out.c_str());

  // 1. Run and dump frames (to a file if requested, else in memory).
  std::stringstream memory;
  std::ofstream file;
  if (!out.empty()) file.open(out);
  std::ostream& sink = out.empty() ? static_cast<std::ostream&>(memory) : file;

  const auto interval = std::max<std::int64_t>(1, steps / frames);
  for (std::int64_t i = 1; i <= steps; ++i) {
    sim.step();
    if (i % interval == 0) {
      md::write_xyz_frame(sink, sim.particles(), box,
                          "step=" + std::to_string(i),
                          /*with_velocities=*/true);
    }
  }

  // 2. Read the trajectory back and analyse each frame.
  std::ifstream file_in;
  if (!out.empty()) file_in.open(out);
  std::istream& source =
      out.empty() ? static_cast<std::istream&>(memory) : file_in;

  Table table({"frame", "g(1.1) peak", "largest cluster", "clusters"});
  md::ParticleVector frame;
  Box frame_box{};
  int index = 0;
  while (md::read_xyz_frame(source, frame, frame_box, true)) {
    ++index;
    md::RadialDistribution rdf(frame_box, 3.5, 35);  // bin width 0.1
    rdf.accumulate(frame);
    const auto g = rdf.g();
    const auto clusters = workload::find_clusters(frame, frame_box, 1.1);
    table.add_row({std::to_string(index), Table::num(g[11], 3),
                   std::to_string(clusters.largest()),
                   std::to_string(clusters.count())});
  }
  table.print(std::cout);
  std::puts("\nthe first-neighbour g(r) peak and the largest cluster both "
            "grow as the supercooled gas condenses — the load-concentration "
            "mechanism behind the paper's Figure 5.");
  return 0;
}
