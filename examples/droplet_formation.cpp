// Droplet formation: the physical workload that motivates the paper.
//
// A Lennard-Jones gas below its boiling point (T* = 0.722) condenses:
// clusters nucleate and grow, cells empty out, and the computational load
// concentrates on the PEs whose domains hold the droplets. This example runs
// the same supercooled system with plain DDM and with DLB-DDM, tracking
// cluster statistics and the force-time imbalance — a miniature of the
// paper's Figures 5 and 6.
//
//   ./droplet_formation [--steps 600] [--density 0.384] [--m 2] [--seed 3]

#include "ddm/parallel_md.hpp"
#include "md/rdf.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/cluster.hpp"
#include "workload/paper_system.hpp"

#include <cstdio>
#include <iostream>

int main(int argc, char** argv) {
  using namespace pcmd;
  const Cli cli(argc, argv);

  workload::PaperSystemSpec spec;
  spec.pe_count = 9;
  spec.m = static_cast<int>(cli.get_int("m", 2));
  spec.density = cli.get_double("density", 0.256);
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const auto steps = cli.get_int("steps", 600);

  Rng rng(spec.seed);
  const auto initial = workload::make_paper_system(spec, rng);
  std::printf("droplet formation: N=%zu particles, rho*=%.3f, T*=%.3f, "
              "%lld steps, DDM vs DLB-DDM on 9 virtual PEs\n\n",
              initial.size(), spec.density, spec.temperature,
              static_cast<long long>(steps));

  ddm::ParallelMdConfig base;
  base.pe_side = spec.pe_side();
  base.m = spec.m;
  base.dt = spec.dt;
  base.rescale_temperature = spec.temperature;
  base.rescale_interval = spec.rescale_interval;

  sim::SeqEngine ddm_engine(spec.pe_count);
  sim::SeqEngine dlb_engine(spec.pe_count);
  auto ddm_config = base;
  ddm_config.dlb_enabled = false;
  auto dlb_config = base;
  dlb_config.dlb_enabled = true;
  ddm::ParallelMd ddm_md(ddm_engine, spec.box(), initial, ddm_config);
  ddm::ParallelMd dlb_md(dlb_engine, spec.box(), initial, dlb_config);

  Table table({"step", "largest cluster", "clusters", "empty cells",
               "DDM imb", "DLB imb", "transfers"});
  int transfers = 0;
  for (std::int64_t i = 1; i <= steps; ++i) {
    const auto a = ddm_md.step();
    const auto b = dlb_md.step();
    transfers += b.transfers;
    if (i % 100 == 0 || i == steps) {
      // Cluster analysis on the gathered DLB state (both runs share the
      // same physics to rounding).
      const auto particles = dlb_md.gather_particles();
      // Bond distance 1.1 sigma: tight enough that the dilute gas does not
      // percolate into one spurious "cluster".
      const auto clusters =
          workload::find_clusters(particles, spec.box(), 1.1);
      auto imbalance = [](const ddm::ParallelStepStats& s) {
        return s.force_avg > 0.0 ? (s.force_max - s.force_min) / s.force_avg
                                 : 0.0;
      };
      table.add_row({std::to_string(i), std::to_string(clusters.largest()),
                     std::to_string(clusters.count()),
                     std::to_string(b.empty_cells),
                     Table::num(imbalance(a), 3), Table::num(imbalance(b), 3),
                     std::to_string(transfers)});
    }
  }
  table.print(std::cout);

  // Structure check: condensation grows the first-neighbour g(r) peak.
  md::RadialDistribution rdf(spec.box(), 3.5, 14);
  rdf.accumulate(dlb_md.gather_particles());
  const auto g = rdf.g();
  std::printf("\ng(r) after %lld steps:", static_cast<long long>(steps));
  for (int b = 2; b < rdf.bins(); b += 2) {
    std::printf("  g(%.2f)=%.2f", rdf.radius(b), g[b]);
  }
  std::printf("\n(a growing peak near r = 1.12 is the droplet signature)\n");

  std::printf("\nvirtual seconds for the whole run: DDM %.3f s, DLB-DDM %.3f "
              "s\n",
              ddm_engine.makespan(), dlb_engine.makespan());
  std::puts("(condensation concentrates load; DLB-DDM should stay flatter "
            "as clusters grow — run with --steps 3000+ to see it clearly)");
  return 0;
}
