// Simulation-as-a-service demonstrator: a mixed queue of clean and hostile
// jobs through the serve::Scheduler, twice.
//
//   ./pcmd_serve [--jobs N] [--workers W] [--max-attempts A]
//                [--store PATH] [--journal PATH] [--quiet 0|1]
//
// Phase 1 generates a deterministic mix — clean runs (flag and JSON
// grammars), drop-heavy chaos runs, malformed specs, unsurvivable poison
// jobs (crash before the first buddy generation), deadline-doomed runs and
// periodic high-priority submissions that preempt running low-priority work
// — submits all of it and drains. Phase 2 resubmits the identical queue and
// must answer everything from the result store without re-running a single
// simulation, leaving the store file byte-for-byte unchanged.
//
// With --journal the scheduler write-ahead journals every lifecycle event
// and the store defers its file rewrite to compaction points. The harness
// then becomes kill-safe: SIGKILL it at any moment, rerun the identical
// command, and recover() replays the journal so the run converges to the
// same store bytes an uninterrupted run produces. (After such a restart the
// process-cumulative counters legitimately exceed a single run's — the
// resubmitted workload is genuinely new traffic past the last compaction —
// so the exact counter self-checks only run when the journal started
// empty.)
//
// The harness self-checks the service contract and exits non-zero on any
// violation: every job reaches exactly one terminal state, poison jobs are
// quarantined after exactly A attempts, malformed specs are archived, clean
// jobs succeed first try, and the process survives it all (the run itself
// is the zero-service-crashes check).

#include "serve/scheduler.hpp"
#include "util/cli.hpp"

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace pcmd;

namespace {

enum class Category { kClean, kChaos, kMalformed, kPoison, kDeadline };

struct Submission {
  std::string text;
  Category category = Category::kClean;
  std::string key;  // filled at submit time
};

std::vector<Submission> make_queue(int jobs) {
  std::vector<Submission> queue;
  queue.reserve(jobs);
  const std::string base = "--pe 9 --m 2 --density 0.2 ";
  for (int i = 0; i < jobs; ++i) {
    Submission s;
    const int seed = 1000 + i;
    if (i % 25 == 24) {
      // High-priority arrivals: land while low-priority long jobs run and
      // evict them (they resume bitwise-identically later).
      s.text = base + "--steps 10 --seed " + std::to_string(seed) +
               " --priority high";
      s.category = Category::kClean;
      queue.push_back(std::move(s));
      continue;
    }
    switch (i % 10) {
      case 5:
        s.text = base + "--steps 30 --seed " + std::to_string(seed) +
                 " --priority low";
        s.category = Category::kClean;
        break;
      case 6:
        s.text = base + "--steps 8 --seed " + std::to_string(seed) +
                 " --faults seed=" + std::to_string(seed) + ",drop=0.45";
        s.category = Category::kChaos;
        break;
      case 7:
        if (i % 20 == 7) {
          s.text = "--seed " + std::to_string(seed) + " --steps banana";
        } else {
          s.text = "{\"seed\": " + std::to_string(seed) +
                   ", \"no-such-flag\": true}";
        }
        s.category = Category::kMalformed;
        break;
      case 8:
        // Rank 4 dies at virtual t=0, before the first buddy generation
        // exists: the watchdog cannot heal this, every attempt fails the
        // same way, and the job lands in quarantine — the poison-job path.
        s.text = base + "--steps 10 --seed " + std::to_string(seed) +
                 " --faults seed=1,crash=4@0 --buddy-every 3 --spares 1";
        s.category = Category::kPoison;
        break;
      case 9:
        s.text = base + "--steps 40 --seed " + std::to_string(seed) +
                 " --deadline 1e-9";
        s.category = Category::kDeadline;
        break;
      default:
        if (i % 4 == 0) {
          s.text = "{\"pe\": 9, \"m\": 2, \"density\": 0.2, \"steps\": 10, "
                   "\"seed\": " + std::to_string(seed) + "}";
        } else {
          s.text = base + "--steps 10 --seed " + std::to_string(seed);
        }
        s.category = Category::kClean;
        break;
    }
    queue.push_back(std::move(s));
  }
  return queue;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::printf("SELF-CHECK FAILED: %s\n", what.c_str());
    ++g_failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const int jobs = static_cast<int>(cli.get_int("jobs", 120));
  const int workers = static_cast<int>(cli.get_int("workers", 4));
  const int max_attempts = static_cast<int>(cli.get_int("max-attempts", 3));
  const std::string store_path = cli.get("store", "serve_results.jsonl");
  const std::string journal_path = cli.get("journal", "");
  const bool quiet = cli.get_bool("quiet", false);
  const auto unknown = cli.unqueried_flags();
  if (!unknown.empty()) {
    std::fprintf(stderr,
                 "pcmd_serve: unknown flag --%s (accepted: --jobs N, "
                 "--workers W, --max-attempts A, --store PATH, "
                 "--journal PATH, --quiet 0|1)\n",
                 unknown.front().c_str());
    return 2;
  }

  const bool journaling = !journal_path.empty();
  // Without a journal every run starts cold. With one, existing files ARE
  // the state a killed predecessor left behind — keep them and recover.
  if (!journaling) std::remove(store_path.c_str());
  auto queue = make_queue(jobs);

  serve::SchedulerConfig config;
  config.workers = workers;
  config.max_attempts = max_attempts;

  obs::CounterBoard counters;
  serve::ResultStore store(store_path, journaling
                                           ? serve::FlushMode::kOnCompact
                                           : serve::FlushMode::kEveryPut);
  std::optional<serve::JobJournal> journal;
  if (journaling) journal.emplace(journal_path);
  serve::JobJournal* journal_ptr = journaling ? &*journal : nullptr;
  // Exact cumulative counter checks only hold when this process saw the
  // whole workload itself (see the header comment).
  const bool fresh_run = !journaling || journal->events().empty();

  // ---- phase 1: the mixed queue, cold --------------------------------------
  std::uint64_t preemptions = 0, resumes = 0;
  {
    serve::Scheduler scheduler(config, store, &counters, journal_ptr);
    const std::size_t recovered = scheduler.recover();
    if (recovered > 0 && !quiet) {
      std::printf("pcmd_serve: recovered %zu pending job(s) from journal\n",
                  recovered);
    }
    for (auto& s : queue) s.key = scheduler.submit(s.text).key;
    scheduler.drain();
    if (!quiet) std::puts(scheduler.counters_line().c_str());
    preemptions = scheduler.stats().preemptions;
    resumes = scheduler.stats().resumes;
    scheduler.stop(serve::StopMode::kDrain);  // compacts store + journal
  }

  const auto records = store.records();
  check(records.size() == queue.size(),
        "store holds " + std::to_string(records.size()) + " records for " +
            std::to_string(queue.size()) + " distinct jobs");
  check(store.torn_records_dropped() == 0, "no torn records on a fresh store");

  int chaos_retried = 0, chaos_quarantined = 0;
  for (const auto& s : queue) {
    const auto it = records.find(s.key);
    if (it == records.end()) {
      check(false, "no terminal record for job: " + s.text);
      continue;
    }
    const auto& r = it->second;
    switch (s.category) {
      case Category::kClean:
        check(r.outcome == serve::JobOutcome::kSucceeded && r.attempts == 1,
              "clean job succeeds first try: " + s.text);
        break;
      case Category::kChaos:
        // Transient chaos either masks entirely (reliable channel), clears
        // on a seed-remixed retry, or exhausts the budget — all are valid
        // terminal states; what is forbidden is vanishing or crashing.
        if (r.outcome == serve::JobOutcome::kSucceeded) {
          if (r.attempts > 1) ++chaos_retried;
        } else {
          check(r.outcome == serve::JobOutcome::kQuarantined &&
                    r.failure == "peer-dead",
                "chaos job quarantines only as peer-dead: " + s.text);
          ++chaos_quarantined;
        }
        break;
      case Category::kMalformed:
        check(r.outcome == serve::JobOutcome::kQuarantined &&
                  r.failure == "malformed-spec" && r.attempts == 0 &&
                  !r.error.empty(),
              "malformed spec archived with its parse error: " + s.text);
        break;
      case Category::kPoison:
        check(r.outcome == serve::JobOutcome::kQuarantined &&
                  r.failure == "unsurvivable" && r.attempts == max_attempts &&
                  !r.error.empty(),
              "poison job quarantined after exactly " +
                  std::to_string(max_attempts) + " attempts: " + s.text);
        break;
      case Category::kDeadline:
        check(r.outcome == serve::JobOutcome::kDeadline && r.steps >= 1,
              "deadline job cancelled by virtual-time budget: " + s.text);
        break;
    }
  }

  // ---- phase 2: identical resubmission must be pure cache ------------------
  const std::string bytes_before = slurp(store_path);
  std::uint64_t malformed_count = 0;
  for (const auto& s : queue) {
    if (s.category == Category::kMalformed) ++malformed_count;
  }
  {
    serve::Scheduler scheduler(config, store, &counters, journal_ptr);
    // No recover() here: the journal's construction-time events were already
    // replayed (and compacted away) by the phase-1 scheduler.
    for (const auto& s : queue) {
      const serve::SubmitResult result = scheduler.submit(s.text);
      check(result.key == s.key, "resubmission maps to the same key: " + s.text);
      if (fresh_run && s.category != Category::kMalformed) {
        check(result.admission == serve::Admission::kCacheHit,
              "well-formed resubmission is a typed cache hit: " + s.text);
      }
    }
    scheduler.drain();
    if (!quiet) std::puts(scheduler.counters_line().c_str());
    check(scheduler.stats().preemptions == 0 && scheduler.stats().resumes == 0,
          "phase 2 runs nothing, so nothing can be preempted");
    scheduler.stop(serve::StopMode::kDrain);
  }
  const std::string bytes_after = slurp(store_path);
  check(bytes_before == bytes_after,
        "store file is byte-identical after resubmission");
  if (fresh_run) {
    check(counters.value("cache_hits") == queue.size() - malformed_count,
          "every well-formed resubmission is a cache hit");
    check(counters.value("malformed") == 2 * malformed_count,
          "malformed resubmissions re-archive deterministically");
    check(counters.value("shed") == 0 && counters.value("tripped") == 0,
          "unbounded lanes shed nothing and trip nothing");
  }
  check(store.size() == records.size(), "phase 2 adds no records");

  std::printf(
      "pcmd_serve: %zu jobs -> %zu records (chaos retried %d, chaos "
      "quarantined %d, preemptions %llu, resumes %llu)\n",
      queue.size(), records.size(), chaos_retried, chaos_quarantined,
      static_cast<unsigned long long>(preemptions),
      static_cast<unsigned long long>(resumes));
  std::puts(counters.line("SERVE-EVENTS").c_str());

  if (g_failures > 0) {
    std::printf("pcmd_serve: %d self-check(s) FAILED\n", g_failures);
    return 1;
  }
  std::puts("SERVE-OK");
  return 0;
}
