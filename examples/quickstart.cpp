// Quickstart: the smallest complete pcmd program.
//
// Builds the paper's supercooled-gas system on a 3x3 grid of virtual PEs,
// runs a few hundred steps of square-pillar domain-decomposition MD with
// permanent-cell dynamic load balancing, and prints physics observables plus
// the virtual machine's utilisation report.
//
//   ./quickstart [--pe-side 3] [--m 2] [--density 0.256] [--steps 300]
//                [--dlb true] [--seed 7]

#include "ddm/parallel_md.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/paper_system.hpp"

#include <cstdio>
#include <iostream>

int main(int argc, char** argv) {
  using namespace pcmd;
  const Cli cli(argc, argv);

  // 1. Describe the system exactly as the paper does: P PEs, pillar
  //    cross-section m, reduced density and temperature.
  workload::PaperSystemSpec spec;
  spec.pe_count = static_cast<int>(cli.get_int("pe-side", 3)) *
                  static_cast<int>(cli.get_int("pe-side", 3));
  spec.m = static_cast<int>(cli.get_int("m", 2));
  spec.density = cli.get_double("density", 0.256);
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const auto steps = cli.get_int("steps", 300);
  const bool dlb = cli.get_bool("dlb", true);

  std::printf("pcmd quickstart: P=%d PEs, m=%d, C=%lld cells, N=%lld "
              "particles, T*=%.3f, rho*=%.3f, DLB=%s\n",
              spec.pe_count, spec.m, static_cast<long long>(spec.total_cells()),
              static_cast<long long>(spec.particle_count()), spec.temperature,
              spec.density, dlb ? "on" : "off");

  // 2. Generate the initial condition.
  Rng rng(spec.seed);
  const auto initial = workload::make_paper_system(spec, rng);

  // 3. Build the virtual parallel machine (T3E-like cost model) and the
  //    SPMD engine on top of it.
  sim::SeqEngine engine(spec.pe_count, sim::MachineModel::t3e());
  ddm::ParallelMdConfig config;
  config.pe_side = spec.pe_side();
  config.m = spec.m;
  config.dt = spec.dt;
  config.rescale_temperature = spec.temperature;
  config.rescale_interval = spec.rescale_interval;
  config.dlb_enabled = dlb;
  ddm::ParallelMd md(engine, spec.box(), initial, config);

  // 4. Run, reporting every 50 steps.
  Table table({"step", "T*", "E_pot/N", "Tt [s]", "Fmax/Fmin", "transfers"});
  int transfers = 0;
  for (std::int64_t i = 1; i <= steps; ++i) {
    const auto stats = md.step();
    transfers += stats.transfers;
    if (i % 50 == 0 || i == steps) {
      table.add_row({std::to_string(i), Table::num(stats.temperature, 4),
                     Table::num(stats.potential_energy / stats.total_particles, 4),
                     Table::num(stats.t_step, 4),
                     Table::num(stats.force_min > 0
                                    ? stats.force_max / stats.force_min
                                    : 0.0,
                                3),
                     std::to_string(transfers)});
    }
  }
  table.print(std::cout);

  // 5. Machine utilisation of the whole run.
  std::cout << '\n' << sim::machine_report(engine) << '\n';

  const auto ownership = md.check_ownership();
  std::printf("ownership invariants: %s\n", ownership.ok ? "OK" : "VIOLATED");
  return ownership.ok ? 0 : 1;
}
