// Scaling study: how the square-pillar decomposition behaves as the virtual
// machine grows, and why the paper prefers it over plane and cube domains
// for mid-size systems (Section 2.2).
//
// Part 1 runs a weak-scaling sweep (fixed density, growing PE grid) on the
// virtual T3E and reports per-step time and parallel efficiency. Part 2
// prints the analytic communication profiles of the three domain shapes.
//
//   ./scaling_study [--steps 100] [--density 0.256] [--m 2]
//                   [--trace out/scaling]
//
// --trace PATH writes one Chrome trace-event JSON (PATH.p9.json, PATH.p16.json,
// ... — open in Perfetto) and one per-step metrics CSV per PE-grid size.

#include "ddm/comm_volume.hpp"
#include "ddm/parallel_md.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/paper_system.hpp"

#include <cstdio>
#include <iostream>
#include <optional>

int main(int argc, char** argv) {
  using namespace pcmd;
  const Cli cli(argc, argv);
  const auto steps = cli.get_int("steps", 100);
  const double density = cli.get_double("density", 0.256);
  const int m = static_cast<int>(cli.get_int("m", 2));
  const auto trace = cli.get_optional("trace");

  std::puts("== weak scaling: fixed density, growing PE grid ==");
  Table scaling({"PEs", "N", "cells", "time/step [s]", "efficiency",
                 "msgs/step/PE"});
  for (const int side : {3, 4, 5, 6}) {
    workload::PaperSystemSpec spec;
    spec.pe_count = side * side;
    spec.m = m;
    spec.density = density;
    spec.seed = 42;
    Rng rng(spec.seed);
    const auto initial = workload::make_paper_system(spec, rng);

    sim::SeqEngine engine(spec.pe_count);
    obs::TraceSession session(
        engine,
        trace ? *trace + ".p" + std::to_string(spec.pe_count) + ".json" : "");
    ddm::ParallelMdConfig config;
    config.pe_side = side;
    config.m = m;
    config.dt = spec.dt;
    config.rescale_temperature = spec.temperature;
    config.dlb_enabled = true;
    config.trace = session.collector();
    ddm::ParallelMd md(engine, spec.box(), initial, config);
    obs::MetricsRecorder recorder(engine);

    const double before = engine.makespan();
    for (std::int64_t i = 0; i < steps; ++i) {
      const auto stats = md.step();
      obs::MetricsRecorder::StepInput input;
      input.step = stats.step;
      input.t_step = stats.t_step;
      input.force_max = stats.force_max;
      input.force_avg = stats.force_avg;
      input.force_min = stats.force_min;
      input.transfers = stats.transfers;
      input.potential_energy = stats.potential_energy;
      input.kinetic_energy = stats.kinetic_energy;
      input.temperature = stats.temperature;
      recorder.record(input);
    }
    session.finish(recorder.rows());
    const double per_step = (engine.makespan() - before) / steps;
    const auto report = sim::machine_report(engine);
    scaling.add_row(
        {std::to_string(spec.pe_count), std::to_string(initial.size()),
         std::to_string(spec.total_cells()), Table::num(per_step, 4),
         Table::num(report.efficiency(), 3),
         Table::num(static_cast<double>(report.total_messages) /
                        (steps * spec.pe_count),
                    3)});
  }
  scaling.print(std::cout);

  std::puts("\n== domain shapes (paper Fig. 2): analytic per-PE per-step "
            "communication ==");
  Table shapes({"shape", "PEs", "neighbours", "halo cells", "surface ratio",
                "T3E comm [ms]"});
  const auto t3e = sim::MachineModel::t3e();
  // Per-halo-cell transfer time: ~4 particles/cell at rho* = 0.256, 32 B per
  // halo record.
  const double per_cell = 4.0 * 32.0 / t3e.bandwidth;
  for (const int k : {24}) {
    struct Case {
      ddm::DomainShape shape;
      int pe;
    };
    for (const auto& c : {Case{ddm::DomainShape::kPlane, 24},
                          Case{ddm::DomainShape::kSquarePillar, 36},
                          Case{ddm::DomainShape::kCube, 27}}) {
      const auto profile = ddm::comm_profile(c.shape, k, c.pe);
      shapes.add_row(
          {ddm::to_string(c.shape), std::to_string(c.pe),
           std::to_string(profile.neighbor_count),
           Table::num(profile.halo_cells, 5),
           Table::num(profile.surface_ratio, 3),
           Table::num(1e3 * profile.comm_seconds(t3e.msg_latency, per_cell),
                      3)});
    }
  }
  shapes.print(std::cout);
  std::puts("\nsquare pillar keeps 8 neighbours with moderate halo volume — "
            "the mid-size sweet spot the paper builds DLB on.");
  return 0;
}
