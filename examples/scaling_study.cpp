// Scaling study: how the square-pillar decomposition behaves as the virtual
// machine grows, and why the paper prefers it over plane and cube domains
// for mid-size systems (Section 2.2).
//
// Part 1 runs a weak-scaling sweep (fixed density, growing PE grid) on the
// virtual T3E and reports per-step time and parallel efficiency. Part 2
// prints the analytic communication profiles of the three domain shapes.
//
//   ./scaling_study [--steps 100] [--density 0.256] [--m 2]
//                   [--trace out/scaling]
//                   [--faults seed=7,drop=0.05] [--checkpoint-every 50]
//                   [--buddy-every 10] [--spares 1]
//                   [--degrade rank=4,at=0.05] [--degrade-factor 6]
//
// --trace PATH writes one Chrome trace-event JSON (PATH.p9.json, PATH.p16.json,
// ... — open in Perfetto) and one per-step metrics CSV per PE-grid size.
//
// --faults PLAN injects deterministic message faults into the sweep and
// routes all traffic through the reliable channel (physics unchanged).
// --checkpoint-every N serializes a full checkpoint every N steps.
//
// --buddy-every N turns on the self-healing recovery layer: every N steps
// each rank ships its permanent-cell state to its torus-neighbour buddy, so
// crashes in --faults plans are survived losslessly (rollback + replay).
// --spares S adds S idle spare ranks that take over dead ranks' roles.
// Recovery totals are printed per grid size as RECOVERY-COUNTERS lines.
//
// --degrade rank=K,at=T switches to a dedicated mode: a 3x3 DLB-DDM run in
// which rank K's compute slows down by --degrade-factor (default 6x) from
// virtual time T on. The before/after Fmax/Fave/Fmin table shows the DLB
// shifting permanent cells off the slow PE until the imbalance is absorbed.

#include "ddm/comm_volume.hpp"
#include "ddm/parallel_md.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "run/run_spec.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/paper_system.hpp"

#include <cstdio>
#include <iostream>
#include <optional>
#include <stdexcept>

namespace {

// The --degrade mode: DLB absorbing a permanently slowed rank. The degrade
// spec itself ("rank=K,at=T") is parsed by the shared run::RunSpec parser.
int run_degrade_mode(const pcmd::run::RunSpec& base) {
  using namespace pcmd;
  run::RunSpec spec = base;
  spec.system.pe_count = 9;
  spec.dlb_enabled = true;
  const run::DegradeSpec& degrade = *spec.degrade;
  if (degrade.rank < 0 || degrade.rank >= spec.system.pe_count) {
    throw std::invalid_argument("--degrade rank out of range for 3x3");
  }
  Rng rng(spec.system.seed);
  const auto initial = workload::make_paper_system(spec.system, rng);

  // fault_plan() folds the degrade stall into any --faults plan.
  sim::FaultInjector injector(spec.fault_plan());

  sim::SeqEngine engine(spec.system.pe_count);
  engine.set_fault_injector(&injector);
  ddm::ParallelMd md(ddm::EngineConfig{.engine = &engine,
                                       .box = spec.system.box(),
                                       .initial = &initial},
                     spec.parallel_config());

  std::printf("== degrade mode: rank %d slows %.1fx at t=%g s (3x3, m=%d, "
              "DLB on) ==\n",
              degrade.rank, degrade.factor, degrade.at, spec.system.m);

  // Classify each step by when it started relative to the stall onset: the
  // "impact" bucket (first 30 steps after T) takes the hit, then the DLB
  // walks the slow rank's columns away and "absorbed" settles back down.
  struct Bucket {
    double fmax = 0.0, fave = 0.0, fmin = 0.0;
    int transfers = 0;
    int steps = 0;
  } before, impact, absorbed;
  int steps_after = 0;
  for (std::int64_t i = 0; i < spec.steps; ++i) {
    const double start = engine.makespan();
    const auto stats = md.step();
    Bucket* b = &before;
    if (start >= degrade.at) {
      ++steps_after;
      b = steps_after <= 30 ? &impact : &absorbed;
    }
    b->fmax += stats.force_max;
    b->fave += stats.force_avg;
    b->fmin += stats.force_min;
    b->transfers += stats.transfers;
    b->steps += 1;
  }

  Table table({"phase", "steps", "Fmax [s]", "Fave [s]", "Fmin [s]",
               "(Fmax-Fmin)/Fave", "DLB transfers"});
  auto add = [&](const char* name, const Bucket& b) {
    if (b.steps == 0) return;
    const double inv = 1.0 / b.steps;
    const double fmax = b.fmax * inv, fave = b.fave * inv, fmin = b.fmin * inv;
    table.add_row({name, std::to_string(b.steps), Table::num(fmax, 4),
                   Table::num(fave, 4), Table::num(fmin, 4),
                   Table::num(fave > 0 ? (fmax - fmin) / fave : 0.0, 3),
                   std::to_string(b.transfers)});
  };
  add("before", before);
  add("impact (first 30)", impact);
  add("absorbed (rest)", absorbed);
  table.print(std::cout);
  const auto fc = injector.counters();
  std::printf("\nstall stretched %llu compute intervals by %.3f virtual "
              "seconds total.\n",
              static_cast<unsigned long long>(fc.stalled_advances),
              fc.stall_seconds);
  std::puts("paper analogue: a T3E PE running hot/throttled — the permanent-"
            "cell DLB drains its columns instead of letting Fmax track the "
            "slow PE forever.");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pcmd;
  const Cli cli(argc, argv);
  run::RunSpec defaults;
  defaults.system.m = 2;
  defaults.system.density = 0.256;
  defaults.system.seed = 42;
  defaults.steps = 100;
  defaults.dlb_enabled = true;
  const bool m_given = cli.has("m");
  run::RunSpec base = run::parse_run_spec(cli, defaults);
  run::require_all_flags_consumed(cli, "scaling_study");
  if (base.degrade) {
    // Default to m = 4 here (movable fraction 9/16): at m = 2 only 1/4 of a
    // PE's columns may move, which caps how much load the DLB can drain off
    // the degraded rank (the paper's "weak DLB capability" regime).
    if (!m_given) base.system.m = 4;
    base.steps = std::max<std::int64_t>(base.steps, 300);
    return run_degrade_mode(base);
  }
  const sim::FaultPlan& faults = base.faults;
  std::optional<sim::FaultInjector> injector;
  if (!faults.empty()) injector.emplace(faults);
  const int checkpoint_every = base.checkpoint_every;
  const int spares = base.fault_tolerance.healing.spares;
  const bool healing = base.healing_enabled();
  const std::int64_t steps = base.steps;

  std::puts("== weak scaling: fixed density, growing PE grid ==");
  Table scaling({"PEs", "N", "cells", "time/step [s]", "efficiency",
                 "msgs/step/PE"});
  for (const int side : {3, 4, 5, 6}) {
    run::RunSpec case_spec = base;
    case_spec.system.pe_count = side * side;
    const workload::PaperSystemSpec& spec = case_spec.system;
    Rng rng(spec.seed);
    const auto initial = workload::make_paper_system(spec, rng);

    sim::SeqEngine engine(spec.pe_count + (healing ? spares : 0));
    if (injector) engine.set_fault_injector(&*injector);
    obs::TraceSession session(
        engine, case_spec.trace_path ? *case_spec.trace_path + ".p" +
                                           std::to_string(spec.pe_count) +
                                           ".json"
                                     : "");
    ddm::ParallelMdConfig config = case_spec.parallel_config();
    config.trace = session.collector();
    ddm::ParallelMd md(ddm::EngineConfig{.engine = &engine, .box = spec.box(),
                                         .initial = &initial},
                       config);
    obs::MetricsRecorder recorder(engine);

    sim::Buffer last_checkpoint;
    int checkpoints_taken = 0;
    const double before = engine.makespan();
    for (std::int64_t i = 0; i < steps; ++i) {
      const auto stats = md.step();
      obs::MetricsRecorder::StepInput input;
      input.step = stats.step;
      input.t_step = stats.t_step;
      input.force_max = stats.force_max;
      input.force_avg = stats.force_avg;
      input.force_min = stats.force_min;
      input.transfers = stats.transfers;
      input.potential_energy = stats.potential_energy;
      input.kinetic_energy = stats.kinetic_energy;
      input.temperature = stats.temperature;
      input.retransmissions = stats.retransmissions;
      input.checkpoint_bytes = stats.checkpoint_bytes;
      input.rollbacks = stats.rollbacks;
      input.failovers = stats.failovers;
      input.particles_recovered = stats.particles_recovered;
      recorder.record(input);
      if (checkpoint_every > 0 && (i + 1) % checkpoint_every == 0) {
        last_checkpoint = md.checkpoint();
        ++checkpoints_taken;
      }
    }
    session.finish(recorder.rows());
    if (checkpoints_taken > 0) {
      std::printf("p%d: %d checkpoints, last %zu bytes\n", spec.pe_count,
                  checkpoints_taken, last_checkpoint.size());
    }
    if (healing) {
      const auto& rc = md.recovery_counters();
      std::printf("RECOVERY-COUNTERS p%d: checkpoint_bytes=%llu "
                  "generations=%llu rollbacks=%llu failovers=%llu "
                  "roles_retired=%llu declared_dead=%llu "
                  "particles_recovered=%llu epoch=%d\n",
                  spec.pe_count,
                  static_cast<unsigned long long>(rc.checkpoint_bytes),
                  static_cast<unsigned long long>(rc.generations),
                  static_cast<unsigned long long>(rc.rollbacks),
                  static_cast<unsigned long long>(rc.failovers),
                  static_cast<unsigned long long>(rc.roles_retired),
                  static_cast<unsigned long long>(rc.declared_dead),
                  static_cast<unsigned long long>(rc.particles_recovered),
                  md.membership().epoch());
    }
    const double per_step = (engine.makespan() - before) / steps;
    const auto report = sim::machine_report(engine);
    scaling.add_row(
        {std::to_string(spec.pe_count), std::to_string(initial.size()),
         std::to_string(spec.total_cells()), Table::num(per_step, 4),
         Table::num(report.efficiency(), 3),
         Table::num(static_cast<double>(report.total_messages) /
                        (steps * spec.pe_count),
                    3)});
  }
  scaling.print(std::cout);

  std::puts("\n== domain shapes (paper Fig. 2): analytic per-PE per-step "
            "communication ==");
  Table shapes({"shape", "PEs", "neighbours", "halo cells", "surface ratio",
                "T3E comm [ms]"});
  const auto t3e = sim::MachineModel::t3e();
  // Per-halo-cell transfer time: ~4 particles/cell at rho* = 0.256, 32 B per
  // halo record.
  const double per_cell = 4.0 * 32.0 / t3e.bandwidth;
  for (const int k : {24}) {
    struct Case {
      ddm::DomainShape shape;
      int pe;
    };
    for (const auto& c : {Case{ddm::DomainShape::kPlane, 24},
                          Case{ddm::DomainShape::kSquarePillar, 36},
                          Case{ddm::DomainShape::kCube, 27}}) {
      const auto profile = ddm::comm_profile(c.shape, k, c.pe);
      shapes.add_row(
          {ddm::to_string(c.shape), std::to_string(c.pe),
           std::to_string(profile.neighbor_count),
           Table::num(profile.halo_cells, 5),
           Table::num(profile.surface_ratio, 3),
           Table::num(1e3 * profile.comm_seconds(t3e.msg_latency, per_cell),
                      3)});
    }
  }
  shapes.print(std::cout);
  std::puts("\nsquare pillar keeps 8 neighbours with moderate halo volume — "
            "the mid-size sweet spot the paper builds DLB on.");
  return 0;
}
